(* Tests for the machine layer: charged access, cache model, NUMA
   costs, MPK integration, locks, parallel, bandwidth queue, critical
   sections, forced yields. *)

module Sched = Simcore.Sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 20

let mkmach ?cfg () =
  let m = Machine.create ?cfg () in
  Machine.add_region m ~base ~size:(1 lsl 20) ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  m

(* simulated time consumed by [body] on one thread *)
let timed ?cfg ?(cpu = 0) body =
  let m = mkmach ?cfg () in
  let t = Machine.spawn m ~cpu (fun () -> body m) in
  Machine.run m;
  (m, Sched.thread_clock (Machine.engine m) t)

let test_rw_outside_simulation () =
  let m = mkmach () in
  Machine.write_u64 m base 77;
  check_int "value" 77 (Machine.read_u64 m base)

let test_read_miss_then_hit () =
  let cfg = Machine.Config.default in
  let _, elapsed =
    timed (fun m ->
        ignore (Machine.read_u64 m base); (* miss: nvmm latency *)
        ignore (Machine.read_u64 m base) (* hit: cache latency *))
  in
  let expected =
    cfg.Machine.Config.nvmm_read_ns + cfg.Machine.Config.nvmm_read_service_ns
    + cfg.Machine.Config.cache_hit_ns
  in
  check_int "miss+hit cost" expected elapsed

let test_write_invalidates_other_cpu () =
  (* cpu 0 reads a line (cached); cpu 1 writes it; cpu 0 must miss *)
  let m = mkmach () in
  let cost = ref 0 in
  let t0 =
    Machine.spawn m ~cpu:0 (fun () ->
        ignore (Machine.read_u64 m base);
        Sched.yield ();
        Sched.yield ();
        let before = Sched.now () in
        ignore (Machine.read_u64 m base);
        cost := Sched.now () - before)
  in
  ignore
    (Machine.spawn m ~cpu:1 (fun () -> Machine.write_u64 m base 1));
  Machine.run m;
  ignore t0;
  check "second read is a miss" true
    (!cost >= (Machine.cfg m).Machine.Config.nvmm_read_ns)

let test_remote_numa_read_costlier () =
  let cfg = Machine.Config.default in
  let m = Machine.create () in
  Machine.add_region m ~base ~size:4096 ~kind:Nvmm.Memdev.Nvmm ~numa:1;
  let t =
    (* cpu 0 is on node 0; the region is on node 1 *)
    Machine.spawn m ~cpu:0 (fun () -> ignore (Machine.read_u64 m base))
  in
  Machine.run m;
  let elapsed = Sched.thread_clock (Machine.engine m) t in
  check "remote read costs more" true
    (elapsed > cfg.Machine.Config.nvmm_read_ns)

let test_mpk_integration () =
  let m = mkmach () in
  let k = Mpk.alloc_key (Machine.mpk m) in
  Mpk.assign_range (Machine.mpk m) k ~base ~size:4096;
  Mpk.set_default_perm (Machine.mpk m) k Mpk.Read_only;
  ignore (Machine.read_u64 m base);
  check "protected write faults" true
    (try Machine.write_u64 m base 1; false with Mpk.Fault _ -> true);
  Machine.wrpkru m k Mpk.Read_write;
  Machine.write_u64 m base 1;
  check_int "after grant" 1 (Machine.read_u64 m base)

let test_wrpkru_thread_local_in_sim () =
  let m = mkmach () in
  let k = Mpk.alloc_key (Machine.mpk m) in
  Mpk.assign_range (Machine.mpk m) k ~base ~size:4096;
  Mpk.set_default_perm (Machine.mpk m) k Mpk.Read_only;
  let other_faulted = ref false in
  ignore
    (Machine.spawn m ~cpu:0 (fun () ->
         Machine.wrpkru m k Mpk.Read_write;
         Machine.write_u64 m base 5;
         Sched.yield ()));
  ignore
    (Machine.spawn m ~cpu:1 (fun () ->
         Sched.charge 1;
         (try Machine.write_u64 m base 6 with Mpk.Fault _ -> other_faulted := true)));
  Machine.run m;
  check "grant is per-thread" true !other_faulted

let test_persist_cost () =
  let cfg = Machine.Config.default in
  let _, elapsed =
    timed (fun m ->
        Machine.write_u64 m base 1;
        Machine.persist m base 8)
  in
  check "persist charges clwb+sfence" true
    (elapsed
     >= cfg.Machine.Config.nvmm_write_ns + cfg.Machine.Config.clwb_ns
        + cfg.Machine.Config.sfence_ns)

let test_parallel_returns_makespan () =
  let m = mkmach () in
  let secs =
    Machine.parallel m ~threads:4 (fun i ->
        Machine.compute m ((i + 1) * 1000))
  in
  Alcotest.(check (float 1e-12)) "makespan = slowest" 4e-6 secs

let test_parallel_batches_accumulate () =
  let m = mkmach () in
  let s1 = Machine.parallel m ~threads:2 (fun _ -> Machine.compute m 500) in
  let s2 = Machine.parallel m ~threads:2 (fun _ -> Machine.compute m 700) in
  Alcotest.(check (float 1e-12)) "first batch" 5e-7 s1;
  Alcotest.(check (float 1e-12)) "second batch measured alone" 7e-7 s2

let test_lock_charges () =
  let m = mkmach () in
  let l = Machine.Lock.create m () in
  let t =
    Machine.spawn m ~cpu:0 (fun () ->
        Machine.Lock.acquire l;
        Machine.Lock.release l)
  in
  Machine.run m;
  check_int "uncontended acquire cost"
    (Machine.cfg m).Machine.Config.lock_acquire_ns
    (Sched.thread_clock (Machine.engine m) t)

let test_lock_transfer_cost () =
  let m = mkmach () in
  let l = Machine.Lock.create m () in
  ignore
    (Machine.spawn m ~cpu:0 (fun () ->
         Machine.Lock.acquire l;
         Machine.Lock.release l));
  let t1 =
    Machine.spawn m ~cpu:1 (fun () ->
        Sched.charge 100;
        Machine.Lock.acquire l;
        Machine.Lock.release l)
  in
  Machine.run m;
  let cfg = Machine.cfg m in
  check_int "transfer charged"
    (100 + cfg.Machine.Config.lock_acquire_ns
     + cfg.Machine.Config.lock_transfer_ns)
    (Sched.thread_clock (Machine.engine m) t1)

let test_bandwidth_saturation () =
  (* hammering flushes from many threads must scale sublinearly: the
     per-node DIMM queue caps throughput *)
  (* a deliberately narrow device (one slow DIMM per node) so that 32
     threads exceed the service rate *)
  let cfg =
    { Machine.Config.default with
      nvmm_dimms_per_node = 1;
      nvmm_write_service_ns = 100 }
  in
  let run threads =
    let m = mkmach ~cfg () in
    let secs =
      Machine.parallel m ~threads (fun i ->
          (* distinct lines every iteration: write-combining must not
             hide the media traffic *)
          for j = 1 to 200 do
            let a = base + (i * 16384) + (j * 64) in
            Machine.write_u64 m a 1;
            Machine.persist m a 8
          done)
    in
    float_of_int (threads * 200) /. secs
  in
  let r1 = run 1 and r32 = run 32 in
  check "sublinear under flush storm" true (r32 < 24.0 *. r1)

let test_critical_blocks_yields () =
  let cfg = { Machine.Config.default with yield_ops = 1 } in
  let m = mkmach ~cfg () in
  let interleaved = ref false in
  let in_critical = ref false in
  ignore
    (Machine.spawn m ~cpu:0 (fun () ->
         Machine.critical m (fun () ->
             in_critical := true;
             for i = 0 to 63 do
               Machine.write_u64 m (base + (i * 8)) i
             done;
             in_critical := false)));
  ignore
    (Machine.spawn m ~cpu:1 (fun () ->
         if !in_critical then interleaved := true;
         ignore (Machine.read_u64 m base)));
  Machine.run m;
  check "no interleave inside critical" false !interleaved

let test_yields_bound_drift () =
  (* with forced yields, two independent threads interleave: the
     second thread observes the first's store midway *)
  let cfg = { Machine.Config.default with yield_ops = 4 } in
  let m = mkmach ~cfg () in
  let observed = ref 0 in
  ignore
    (Machine.spawn m ~cpu:0 (fun () ->
         for i = 1 to 100 do
           Machine.write_u64 m base i
         done));
  ignore
    (Machine.spawn m ~cpu:1 (fun () ->
         for _ = 1 to 20 do
           ignore (Machine.read_u64 m (base + 4096))
         done;
         observed := Machine.read_u64 m base));
  Machine.run m;
  check "interleaved observation" true (!observed > 0 && !observed < 100)

let test_profile_accounts_for_clock () =
  (* the per-category profile must sum to the thread's charged time *)
  let m = mkmach () in
  Machine.reset_profile m;
  let t =
    Machine.spawn m ~cpu:0 (fun () ->
        ignore (Machine.read_u64 m base);
        ignore (Machine.read_u64 m base);
        Machine.write_u64 m base 1;
        Machine.persist m base 8;
        Machine.compute m 123)
  in
  Machine.run m;
  let p = Machine.profile m in
  let total =
    p.Machine.p_read_hit + p.Machine.p_read_miss + p.Machine.p_write
    + p.Machine.p_flush + p.Machine.p_fence + p.Machine.p_bandwidth_wait
    + p.Machine.p_compute + p.Machine.p_wrpkru
  in
  check_int "profile = clock" (Sched.thread_clock (Machine.engine m) t) total;
  check "hit and miss distinguished" true
    (p.Machine.p_read_hit > 0 && p.Machine.p_read_miss > 0);
  check_int "compute tracked" 123 p.Machine.p_compute;
  Machine.reset_profile m;
  check_int "reset" 0 (Machine.profile m).Machine.p_compute

let () =
  Alcotest.run "machine"
    [ ( "access",
        [ Alcotest.test_case "outside simulation" `Quick test_rw_outside_simulation;
          Alcotest.test_case "miss then hit" `Quick test_read_miss_then_hit;
          Alcotest.test_case "invalidation" `Quick test_write_invalidates_other_cpu;
          Alcotest.test_case "remote numa" `Quick test_remote_numa_read_costlier;
          Alcotest.test_case "persist cost" `Quick test_persist_cost ] );
      ( "mpk",
        [ Alcotest.test_case "integration" `Quick test_mpk_integration;
          Alcotest.test_case "per-thread grant" `Quick test_wrpkru_thread_local_in_sim ] );
      ( "threads",
        [ Alcotest.test_case "parallel makespan" `Quick test_parallel_returns_makespan;
          Alcotest.test_case "parallel batches" `Quick test_parallel_batches_accumulate;
          Alcotest.test_case "yields bound drift" `Quick test_yields_bound_drift;
          Alcotest.test_case "critical sections" `Quick test_critical_blocks_yields ] );
      ( "locks",
        [ Alcotest.test_case "acquire cost" `Quick test_lock_charges;
          Alcotest.test_case "transfer cost" `Quick test_lock_transfer_cost ] );
      ( "bandwidth",
        [ Alcotest.test_case "saturation" `Quick test_bandwidth_saturation ] );
      ( "profile",
        [ Alcotest.test_case "accounts for clock" `Quick
            test_profile_accounts_for_clock ] ) ]
