(* White-box tests for Poseidon's internal components: the multi-level
   hash table, the buddy lists, record encoding, the superblock, and
   the fsck reporter.  These drive the structures directly through a
   formatted sub-heap, below the public API. *)

module Prng = Repro_util.Prng
module L = Poseidon.Layout
module Sh = Poseidon.Subheap
module Ht = Poseidon.Hashtable
module Bd = Poseidon.Buddy
module Rec = Poseidon.Record
module Ul = Poseidon.Undolog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

(* a formatted sub-heap to play with, metadata unprotected so the
   tests can drive structures without MPK ceremony *)
let mksh ?(data_size = 1 lsl 16) ?(base_buckets = 16) () =
  let mach = Machine.create () in
  let meta_size = L.meta_size ~base_buckets ~levels:L.max_levels in
  Machine.add_region mach ~base ~size:(meta_size + data_size)
    ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  let sh =
    Sh.format mach ~heap_id:1 ~index:0 ~cpu:0 ~meta_base:base
      ~data_base:(base + meta_size) ~data_size ~base_buckets
  in
  (mach, sh)

let op sh f =
  let ctx = Ul.begin_op sh.Sh.mach ~meta_base:sh.Sh.meta_base in
  let r = f ctx in
  Ul.commit ctx;
  r

(* ---------- record codec ---------- *)

let test_record_fields () =
  let _, sh = mksh () in
  let mach = sh.Sh.mach in
  (* the initial block's record *)
  let rec_addr = Option.get (Ht.lookup sh.Sh.ht 0) in
  check_int "offset" 0 (Rec.get_offset mach rec_addr);
  check_int "size" sh.Sh.data_size (Rec.get_size mach rec_addr);
  check_int "status" L.st_free (Rec.get_status mach rec_addr);
  check_int "prev" L.nil_off (Rec.get_prev mach rec_addr);
  check_int "next" L.nil_off (Rec.get_next mach rec_addr);
  op sh (fun ctx ->
      Rec.set_size ctx rec_addr 12345;
      Rec.set_prev ctx rec_addr 64);
  check_int "updated size" 12345 (Rec.get_size mach rec_addr);
  check_int "updated prev" 64 (Rec.get_prev mach rec_addr)

(* ---------- hash table ---------- *)

let test_hash_lookup_miss () =
  let _, sh = mksh () in
  check "block 0 present" true (Ht.lookup sh.Sh.ht 0 <> None);
  check "unknown offset" true (Ht.lookup sh.Sh.ht 999 = None)

let test_hash_insert_many_and_lookup () =
  let _, sh = mksh ~base_buckets:32 () in
  (* insert synthetic records for offsets 32,64,...  (the initial
     block record stays at offset 0) *)
  let offs = List.init 100 (fun i -> 32 * (i + 1)) in
  (* 100 inserts overflow the probe windows of a 32-bucket level, so
     extensions must kick in along the way *)
  op sh (fun ctx ->
      List.iter
        (fun off ->
          let rec insert attempts =
            match Ht.find_insert_slot sh.Sh.ht off with
            | Some (level, slot) ->
              Rec.init ctx slot ~off ~size:32 ~status:L.st_alloc
                ~prev:L.nil_off ~next:L.nil_off;
              Ht.live_incr ctx sh.Sh.ht level
            | None ->
              check "can extend" true (Ht.extend ctx sh.Sh.ht);
              if attempts < L.max_levels then insert (attempts + 1)
              else Alcotest.fail "no slot after extensions"
          in
          insert 0)
        offs);
  check "extended beyond one level" true (Ht.levels sh.Sh.ht > 1);
  List.iter
    (fun off ->
      match Ht.lookup sh.Sh.ht off with
      | Some rec_addr ->
        check_int "found offset" off (Rec.get_offset sh.Sh.mach rec_addr)
      | None -> Alcotest.fail "lookup failed")
    offs

let test_hash_tombstone_reuse () =
  let _, sh = mksh () in
  let off = 4096 in
  let slot1 =
    op sh (fun ctx ->
        match Ht.find_insert_slot sh.Sh.ht off with
        | Some (level, slot) ->
          Rec.init ctx slot ~off ~size:32 ~status:L.st_alloc ~prev:L.nil_off
            ~next:L.nil_off;
          Ht.live_incr ctx sh.Sh.ht level;
          slot
        | None -> Alcotest.fail "no slot")
  in
  (* tombstone it *)
  op sh (fun ctx ->
      Rec.set_status ctx slot1 L.st_tombstone;
      Ht.live_decr ctx sh.Sh.ht (Ht.level_of_rec sh.Sh.ht slot1));
  check "gone" true (Ht.lookup sh.Sh.ht off = None);
  (* the tombstone slot is reusable *)
  let slot2 =
    op sh (fun ctx ->
        match Ht.find_insert_slot sh.Sh.ht off with
        | Some (_, slot) ->
          Rec.init ctx slot ~off ~size:64 ~status:L.st_free ~prev:L.nil_off
            ~next:L.nil_off;
          slot
        | None -> Alcotest.fail "no slot")
  in
  check_int "same slot reused" slot1 slot2

let test_hash_extend_shrink () =
  let _, sh = mksh ~base_buckets:8 () in
  check_int "one level" 1 (Ht.levels sh.Sh.ht);
  op sh (fun ctx -> check "extends" true (Ht.extend ctx sh.Sh.ht));
  check_int "two levels" 2 (Ht.levels sh.Sh.ht);
  (* no live records in level 1: shrink releases it *)
  (match op sh (fun ctx -> Ht.shrink ctx sh.Sh.ht) with
   | Some (from_level, to_level) ->
     check_int "shrinks to 1" 1 from_level;
     check_int "from 2" 2 to_level;
     Ht.punch_levels sh.Sh.ht ~from_level ~to_level
   | None -> Alcotest.fail "expected shrink");
  check_int "back to one level" 1 (Ht.levels sh.Sh.ht)

let test_hash_extend_capped () =
  let _, sh = mksh ~base_buckets:8 () in
  op sh (fun ctx ->
      for _ = 2 to L.max_levels do
        check "extend" true (Ht.extend ctx sh.Sh.ht)
      done;
      check "capped at max_levels" false (Ht.extend ctx sh.Sh.ht))

let test_level_of_rec () =
  let _, sh = mksh ~base_buckets:8 () in
  let b0 = Ht.bucket_addr sh.Sh.ht ~level:0 ~idx:0 in
  check_int "level 0" 0 (Ht.level_of_rec sh.Sh.ht b0);
  let b1 = Ht.bucket_addr sh.Sh.ht ~level:1 ~idx:3 in
  check_int "level 1" 1 (Ht.level_of_rec sh.Sh.ht b1);
  let b2 = Ht.bucket_addr sh.Sh.ht ~level:2 ~idx:31 in
  check_int "level 2" 2 (Ht.level_of_rec sh.Sh.ht b2)

(* ---------- buddy lists ---------- *)

let test_buddy_push_pop_order () =
  let _, sh = mksh () in
  let mach = sh.Sh.mach in
  let meta = sh.Sh.meta_base in
  (* build three fake free records in the hash *)
  let mk off =
    op sh (fun ctx ->
        match Ht.find_insert_slot sh.Sh.ht off with
        | Some (_, slot) ->
          Rec.init ctx slot ~off ~size:32 ~status:L.st_free ~prev:L.nil_off
            ~next:L.nil_off;
          slot
        | None -> Alcotest.fail "no slot")
  in
  let r1 = mk 1024 and r2 = mk 2048 and r3 = mk 3072 in
  let cls = 10 in
  op sh (fun ctx ->
      Bd.push_head ctx meta cls r1;
      Bd.push_tail ctx meta cls r2;
      Bd.push_head ctx meta cls r3);
  (* list order: r3, r1, r2 *)
  check_int "head" r3 (Bd.head mach meta cls);
  check_int "tail" r2 (Bd.tail mach meta cls);
  check_int "middle" r1 (Rec.get_next_free mach r3);
  (* unlink the middle element *)
  op sh (fun ctx -> Bd.unlink ctx meta cls r1);
  check_int "head after unlink" r3 (Bd.head mach meta cls);
  check_int "r3 -> r2" r2 (Rec.get_next_free mach r3);
  check_int "r2 <- r3" r3 (Rec.get_prev_free mach r2);
  (* drain *)
  op sh (fun ctx ->
      Bd.unlink ctx meta cls r3;
      Bd.unlink ctx meta cls r2);
  check_int "empty head" 0 (Bd.head mach meta cls);
  check_int "empty tail" 0 (Bd.tail mach meta cls)

let test_buddy_first_fit () =
  let _, sh = mksh () in
  let meta = sh.Sh.meta_base in
  let mk off size =
    op sh (fun ctx ->
        match Ht.find_insert_slot sh.Sh.ht off with
        | Some (_, slot) ->
          Rec.init ctx slot ~off ~size ~status:L.st_free ~prev:L.nil_off
            ~next:L.nil_off;
          slot
        | None -> Alcotest.fail "no slot")
  in
  let small = mk 1024 40 in
  let big = mk 2048 60 in
  let cls = 5 in
  op sh (fun ctx ->
      Bd.push_tail ctx meta cls small;
      Bd.push_tail ctx meta cls big);
  check "first fit skips too-small" true
    (Bd.first_fit sh.Sh.mach meta cls ~min_size:50 ~max_steps:8 = Some big);
  check "first fit bounded" true
    (Bd.first_fit sh.Sh.mach meta cls ~min_size:50 ~max_steps:1 = None)

(* ---------- superblock ---------- *)

let test_superblock_roundtrip () =
  let module Sb = Poseidon.Superblock in
  let mach = Machine.create () in
  Machine.add_region mach ~base ~size:(L.sb_size 8) ~kind:Nvmm.Memdev.Nvmm
    ~numa:0;
  Sb.format mach ~base ~window_size:(1 lsl 30) ~heap_id:9 ~num_slots:8;
  check "formatted" true (Sb.is_formatted mach ~base);
  check_int "heap id" 9 (Sb.heap_id mach ~base);
  check_int "slots" 8 (Sb.num_slots mach ~base);
  check "no slot" false (Sb.slot_active mach ~base 3);
  Sb.publish_slot mach ~base 3 ~meta_base:12288 ~data_base:20480
    ~data_size:4096;
  check "slot active" true (Sb.slot_active mach ~base 3);
  check_int "meta base" 12288 (Sb.slot_meta_base mach ~base 3);
  check_int "data size" 4096 (Sb.slot_data_size mach ~base 3);
  (* publication survives a crash *)
  Nvmm.Memdev.crash (Machine.dev mach) `Strict;
  check "slot durable" true (Sb.slot_active mach ~base 3)

(* ---------- fsck ---------- *)

let mkheap () =
  let mach = Machine.create ~cfg:{ Machine.Config.default with num_cpus = 2 } () in
  ( mach,
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(1 lsl 18) ~base_buckets:32 () )

let test_fsck_clean_heap () =
  let _, h = mkheap () in
  let ps = List.init 20 (fun i -> Option.get (Poseidon.Heap.alloc h (32 * (i + 1)))) in
  List.iteri (fun i p -> if i mod 2 = 0 then Poseidon.Heap.free h p) ps;
  let report = Poseidon.Fsck.run h in
  check "clean" true (Poseidon.Fsck.is_clean report);
  let expected_live =
    List.fold_left
      (fun (i, acc) _ ->
        (i + 1, if i mod 2 = 0 then acc else acc + L.round_up (32 * (i + 1))))
      (0, 0) ps
    |> snd
  in
  check_int "live bytes agree" expected_live report.Poseidon.Fsck.total_live_bytes;
  check_int "no violations" 0 report.Poseidon.Fsck.total_violations;
  check "root not set" false report.Poseidon.Fsck.root_set;
  (* render doesn't raise *)
  ignore (Format.asprintf "%a" Poseidon.Fsck.pp report)

let test_fsck_counts_subheaps () =
  let mach, h = mkheap () in
  let _ = Machine.parallel mach ~threads:2 (fun _ -> ignore (Poseidon.Heap.alloc h 64)) in
  let report = Poseidon.Fsck.run h in
  check_int "two sub-heaps" 2 (List.length report.Poseidon.Fsck.subheaps)

(* unprotected heap + direct metadata smash must surface violations *)
let test_fsck_detects_violation () =
  let mach = Machine.create ~cfg:{ Machine.Config.default with num_cpus = 2 } () in
  let h =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 34) ~heap_id:1
      ~sub_data_size:(1 lsl 18) ~base_buckets:32 ~protected:false ()
  in
  ignore (Poseidon.Heap.alloc h 64);
  let target = ref 0 in
  Poseidon.Heap.iter_subheaps h (fun sh ->
      target := sh.Sh.meta_base + L.sh_off_buddy_heads);
  Machine.write_u64 mach !target 0xDEAD;
  let report = Poseidon.Fsck.run h in
  check "violations found" true (report.Poseidon.Fsck.total_violations > 0)

let () =
  Alcotest.run "internals"
    [ ("record", [ Alcotest.test_case "fields" `Quick test_record_fields ]);
      ( "hashtable",
        [ Alcotest.test_case "lookup miss" `Quick test_hash_lookup_miss;
          Alcotest.test_case "insert many" `Quick test_hash_insert_many_and_lookup;
          Alcotest.test_case "tombstone reuse" `Quick test_hash_tombstone_reuse;
          Alcotest.test_case "extend/shrink" `Quick test_hash_extend_shrink;
          Alcotest.test_case "extend capped" `Quick test_hash_extend_capped;
          Alcotest.test_case "level_of_rec" `Quick test_level_of_rec ] );
      ( "buddy",
        [ Alcotest.test_case "push/pop/unlink" `Quick test_buddy_push_pop_order;
          Alcotest.test_case "first fit" `Quick test_buddy_first_fit ] );
      ( "superblock",
        [ Alcotest.test_case "roundtrip" `Quick test_superblock_roundtrip ] );
      ( "fsck",
        [ Alcotest.test_case "clean heap" `Quick test_fsck_clean_heap;
          Alcotest.test_case "sub-heap count" `Quick test_fsck_counts_subheaps;
          Alcotest.test_case "detects violation" `Quick test_fsck_detects_violation ] ) ]
