(* Tests for the extendible-hash index (the §8 "more advanced index
   scheme" extension): model agreement, splits and directory doubling,
   deletes, crash consistency through its private undo log. *)

module Prng = Repro_util.Prng
module Eh = Poseidon.Exthash

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

let mk ?(size = 1 lsl 24) () =
  let mach = Machine.create () in
  Machine.add_region mach ~base ~size ~kind:Nvmm.Memdev.Nvmm ~numa:0;
  (mach, Eh.create mach ~base ~size)

let test_empty () =
  let _, t = mk () in
  check "missing" true (Eh.lookup t 42 = None);
  check_int "count 0" 0 (Eh.count t);
  Eh.check t

let test_insert_lookup () =
  let _, t = mk () in
  Eh.with_op t (fun ctx -> Eh.insert ctx t 42 4200);
  check "found" true (Eh.lookup t 42 = Some 4200);
  check "other missing" true (Eh.lookup t 43 = None);
  check_int "count" 1 (Eh.count t)

let test_update () =
  let _, t = mk () in
  Eh.with_op t (fun ctx ->
      Eh.insert ctx t 7 1;
      Eh.insert ctx t 7 2);
  check "updated" true (Eh.lookup t 7 = Some 2);
  check_int "no duplicate" 1 (Eh.count t)

let test_zero_key_rejected () =
  let _, t = mk () in
  check "zero rejected" true
    (try Eh.with_op t (fun ctx -> Eh.insert ctx t 0 1); false
     with Invalid_argument _ -> true)

let test_splits_and_doubling () =
  let _, t = mk () in
  let n = 5000 in
  Eh.with_op t (fun _ -> ());
  for k = 1 to n do
    Eh.with_op t (fun ctx -> Eh.insert ctx t k (k * 3))
  done;
  Eh.check t;
  check "directory grew" true (Eh.depth t > 1);
  check_int "count" n (Eh.count t);
  let ok = ref true in
  for k = 1 to n do
    if Eh.lookup t k <> Some (k * 3) then ok := false
  done;
  check "all found after splits" true !ok

let test_delete () =
  let _, t = mk () in
  for k = 1 to 100 do
    Eh.with_op t (fun ctx -> Eh.insert ctx t k k)
  done;
  for k = 1 to 100 do
    if k mod 2 = 0 then
      check "deleted" true (Eh.with_op t (fun ctx -> Eh.delete ctx t k))
  done;
  check "missing delete" false (Eh.with_op t (fun ctx -> Eh.delete ctx t 2));
  check_int "half left" 50 (Eh.count t);
  check "odd kept" true (Eh.lookup t 51 = Some 51);
  check "even gone" true (Eh.lookup t 50 = None);
  Eh.check t

let prop_model =
  QCheck.Test.make ~name:"exthash agrees with a map model" ~count:30
    QCheck.(list (pair (int_range 1 1000) (int_range 0 100000)))
    (fun kvs ->
      let _, t = mk () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          Eh.with_op t (fun ctx -> Eh.insert ctx t k v);
          Hashtbl.replace model k v)
        kvs;
      Eh.check t;
      Hashtbl.fold (fun k v ok -> ok && Eh.lookup t k = Some v) model true
      && Eh.count t = Hashtbl.length model)

let test_crash_consistency () =
  (* interrupted operations roll back through the private undo log *)
  let exception Crash_now in
  let rng = Prng.create 4 in
  for _ = 1 to 25 do
    let mach, t = mk () in
    let dev = Machine.dev mach in
    for k = 1 to 200 do
      Eh.with_op t (fun ctx -> Eh.insert ctx t k k)
    done;
    (* crash at a random fence during further inserts *)
    Nvmm.Memdev.reset_counters dev;
    let stop = 1 + Prng.int rng 20 in
    Nvmm.Memdev.set_fence_hook dev
      (Some (fun n -> if n >= stop then raise Crash_now));
    (try
       for k = 201 to 260 do
         Eh.with_op t (fun ctx -> Eh.insert ctx t k k)
       done
     with Crash_now -> ());
    Nvmm.Memdev.set_fence_hook dev None;
    Nvmm.Memdev.crash dev `Strict;
    (* recover the private log, then validate *)
    ignore mach;
    Eh.recover t;
    Eh.check t;
    let ok = ref true in
    for k = 1 to 200 do
      if Eh.lookup t k <> Some k then ok := false
    done;
    check "prefix intact after crash" true !ok
  done

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_model ]

let () =
  Alcotest.run "exthash"
    [ ( "basic",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "zero key" `Quick test_zero_key_rejected ] );
      ( "growth",
        [ Alcotest.test_case "splits and doubling" `Quick
            test_splits_and_doubling ] );
      ("delete", [ Alcotest.test_case "delete" `Quick test_delete ]);
      ("model", qsuite);
      ( "crash",
        [ Alcotest.test_case "undo-log consistency" `Quick
            test_crash_consistency ] ) ]
