(* Tests for the PMDK-like baseline: the AVL tree, the chunk index,
   small/large allocation paths, the action log, arena behaviour, the
   Fig. 3 vulnerabilities as regression assertions, and the canary
   mitigation. *)

module Prng = Repro_util.Prng
module Memdev = Nvmm.Memdev
module H = Pmdk_sim.Heap
module Avl = Pmdk_sim.Avl
module Ci = Pmdk_sim.Chunk_index
module L = Pmdk_sim.Layout

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base = 1 lsl 30

let mkheap ?(size = 1 lsl 24) ?(canary = false) () =
  let mach = Machine.create () in
  (mach, H.create mach ~base ~size ~heap_id:1 ~canary ())

let alloc_exn h size =
  match H.alloc h size with
  | Some p -> p
  | None -> Alcotest.fail "unexpected out-of-memory"

(* ---------- AVL ---------- *)

let test_avl_basic () =
  let t = Avl.create () in
  Avl.insert t ~size:100 ~addr:1;
  Avl.insert t ~size:50 ~addr:2;
  Avl.insert t ~size:200 ~addr:3;
  check_int "count" 3 (Avl.count t);
  Avl.check t;
  check "best fit exact" true (Avl.find_best_fit t ~size:50 = Some (50, 2));
  check "best fit above" true (Avl.find_best_fit t ~size:51 = Some (100, 1));
  check "no fit" true (Avl.find_best_fit t ~size:201 = None);
  check "remove" true (Avl.remove t ~size:100 ~addr:1);
  check "remove gone" false (Avl.remove t ~size:100 ~addr:1);
  check_int "count after" 2 (Avl.count t)

let test_avl_remove_best_fit () =
  let t = Avl.create () in
  Avl.insert t ~size:64 ~addr:10;
  Avl.insert t ~size:64 ~addr:20;
  (* ties broken by address *)
  check "first" true (Avl.remove_best_fit t ~size:64 = Some (64, 10));
  check "second" true (Avl.remove_best_fit t ~size:64 = Some (64, 20));
  check "empty" true (Avl.remove_best_fit t ~size:64 = None)

let prop_avl_vs_model =
  QCheck.Test.make ~name:"avl behaves like a sorted model" ~count:100
    QCheck.(list (pair (int_range 1 200) (int_range 1 10_000)))
    (fun items ->
      let t = Avl.create () in
      let module S = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let model = ref S.empty in
      List.iter
        (fun (size, addr) ->
          if not (S.mem (size, addr) !model) then begin
            Avl.insert t ~size ~addr;
            model := S.add (size, addr) !model
          end)
        items;
      Avl.check t;
      (* drain by best fit and compare with the model minimum *)
      let ok = ref true in
      while not (S.is_empty !model) do
        let min = S.min_elt !model in
        (match Avl.remove_best_fit t ~size:1 with
         | Some got -> if got <> min then ok := false
         | None -> ok := false);
        model := S.remove min !model
      done;
      !ok && Avl.count t = 0)

let test_avl_visit_charges () =
  let visits = ref 0 in
  let t = Avl.create ~on_visit:(fun () -> incr visits) () in
  for i = 1 to 64 do
    Avl.insert t ~size:i ~addr:i
  done;
  let before = !visits in
  ignore (Avl.find_best_fit t ~size:32);
  check "visits charged, logarithmic" true
    (!visits > before && !visits - before < 20)

(* ---------- chunk index ---------- *)

let test_chunk_index () =
  let ci = Ci.create () in
  Ci.add ci ~base:100 ~size:50;
  Ci.add ci ~base:300 ~size:100;
  Ci.add ci ~base:10 ~size:20;
  check_int "count" 3 (Ci.count ci);
  check "find inside" true
    (match Ci.find ci 120 with Some e -> e.Ci.base = 100 | None -> false);
  check "find first" true
    (match Ci.find ci 10 with Some e -> e.Ci.base = 10 | None -> false);
  check "miss between" true (Ci.find ci 200 = None);
  check "miss below" true (Ci.find ci 5 = None);
  Ci.resize ci ~base:100 ~size:10;
  check "resized" true (Ci.find ci 120 = None);
  check "still inside" true
    (match Ci.find ci 105 with Some e -> e.Ci.base = 100 | None -> false)

(* ---------- allocation paths ---------- *)

let test_small_alloc_free () =
  let mach, h = mkheap () in
  let p = alloc_exn h 100 in
  Machine.write_u64 mach p 42;
  check_int "usable" 42 (Machine.read_u64 mach p);
  check_int "header size" 100 (Machine.read_u64 mach (p - 16));
  check "header magic" true (Machine.read_u64 mach (p - 8) = L.obj_magic);
  H.free h p

let test_small_reuse_after_action_batch () =
  let _, h = mkheap () in
  (* free enough objects to trigger an action-log apply (cap 64) and a
     rebuild, then confirm reuse *)
  let ps = List.init 70 (fun _ -> alloc_exn h 64) in
  List.iter (H.free h) ps;
  let ps2 = List.init 70 (fun _ -> alloc_exn h 64) in
  check_int "reused" 70 (List.length ps2);
  let st = H.stats h in
  check "action log applied" true (st.H.action_applies >= 1)

let test_large_alloc_free_reuse () =
  let _, h = mkheap () in
  let p = alloc_exn h 100_000 in
  H.free h p;
  let p2 = alloc_exn h 100_000 in
  check_int "same chunk reused" p p2

let test_large_split () =
  let _, h = mkheap ~size:(1 lsl 24) () in
  let big = alloc_exn h (4 * 1024 * 1024) in
  H.free h big;
  (* a smaller allocation must split the freed chunk *)
  let small = alloc_exn h 300_000 in
  let small2 = alloc_exn h 300_000 in
  check "both inside the old chunk" true
    (small >= big - 4096 - 16
     && small2 < big + (4 * 1024 * 1024));
  let st = H.stats h in
  check "free chunk remains" true (st.H.avl_nodes >= 1)

let test_oom () =
  let _, h = mkheap ~size:(1 lsl 21) () in
  check "oversized fails" true (H.alloc h (1 lsl 22) = None)

let test_fill_heap_small () =
  let _, h = mkheap ~size:(1 lsl 22) () in
  let rec fill n =
    match H.alloc h 64 with Some _ -> fill (n + 1) | None -> n
  in
  let n = fill 0 in
  (* 4 MiB window, 80 B per object (two 64 B units): tens of thousands *)
  check "thousands of allocations" true (n > 20_000)

let test_arena_assignment () =
  (* allocations from different CPUs use different arenas: verified by
     their chunks being disjoint *)
  let cfg = { Machine.Config.default with num_cpus = 4 } in
  let mach = Machine.create ~cfg () in
  let h = H.create mach ~base ~size:(1 lsl 24) ~heap_id:1 () in
  let ptrs = Array.make 4 0 in
  let _ =
    Machine.parallel mach ~threads:4 (fun i ->
        ptrs.(i) <- Option.get (H.alloc h 64))
  in
  let chunk_of p = (p - base) / L.small_chunk_size in
  let chunks = Array.to_list (Array.map chunk_of ptrs) in
  check_int "4 distinct chunks (arenas)" 4
    (List.length (List.sort_uniq compare chunks))

(* ---------- Fig. 3 regressions ---------- *)

let fill_all h size =
  let rec go acc = match H.alloc h size with
    | Some p -> go (p :: acc)
    | None -> acc
  in
  go []

let test_fig3_overflow_overlapping () =
  let mach, h = mkheap ~size:(4 * 1024 * 1024) () in
  let all = fill_all h 64 in
  let n = List.length all in
  let victim = List.nth all (n / 2) in
  Machine.write_u64 mach (victim - 16) 1088;
  H.free h victim;
  let fresh = fill_all h 64 in
  (* the paper's exact outcome: 9 allocations after freeing one *)
  check_int "nine allocations (paper Fig. 3)" 9 (List.length fresh);
  let overlap =
    List.exists
      (fun p -> List.exists (fun q -> q <> victim && abs (p - q) < 64) all)
      fresh
  in
  check "overlapping live objects" true overlap

let test_fig3_shrink_leak () =
  let mach, h = mkheap ~size:(64 * 1024 * 1024) () in
  let big = 2 * 1024 * 1024 in
  let all = fill_all h big in
  let n = List.length all in
  check "filled some" true (n > 0);
  List.iter
    (fun p ->
      Machine.write_u64 mach (p - 16) 64;
      H.free h p)
    all;
  check_int "no 2 MiB chunk refillable (paper Fig. 3)" 0
    (List.length (fill_all h big))

let test_canary_blocks_corrupted_free () =
  let mach, h = mkheap ~canary:true () in
  let p = alloc_exn h 64 in
  (* clobber both header words, as a contiguous overrun would *)
  Machine.write_u64 mach (p - 16) 1088;
  Machine.write_u64 mach (p - 8) 0x41414141;
  H.free h p;
  let st = H.stats h in
  check_int "free skipped" 1 st.H.skipped_corrupt_free

let test_direct_bitmap_corruption () =
  let mach, h = mkheap () in
  let p = alloc_exn h 64 in
  let chunk = (p - base) / L.small_chunk_size * L.small_chunk_size + base in
  (* no isolation: the store goes through *)
  Machine.write_u64 mach (chunk + L.ck_off_bitmap) 0;
  check_int "silently corrupted" 0
    (Machine.read_u64 mach (chunk + L.ck_off_bitmap))

(* ---------- tx ---------- *)

let test_tx_rollback () =
  let mach, h = mkheap () in
  ignore (H.tx_alloc h 64 ~is_end:false);
  ignore (H.tx_alloc h 64 ~is_end:false);
  Memdev.crash (Machine.dev mach) `Strict;
  let h2 = H.attach mach ~base () in
  (* rolled back: both objects' units cleared -> refilling gets them *)
  ignore h2;
  let p = Option.get (H.alloc h2 64) in
  ignore p

let test_tx_commit_survives () =
  let mach, h = mkheap () in
  let p1 = Option.get (H.tx_alloc h 64 ~is_end:false) in
  let p2 = Option.get (H.tx_alloc h 64 ~is_end:true) in
  Machine.write_u64 mach p1 111;
  Machine.persist mach p1 8;
  Machine.write_u64 mach p2 222;
  Machine.persist mach p2 8;
  Memdev.crash (Machine.dev mach) `Strict;
  ignore (H.attach mach ~base ());
  check_int "p1 data" 111 (Machine.read_u64 mach p1);
  check_int "p2 data" 222 (Machine.read_u64 mach p2)

(* ---------- stats / rebuilds ---------- *)

let test_rebuild_counted () =
  let _, h = mkheap () in
  (* exhaust the initial chunk's free-list entries, free everything,
     and allocate again: the refill must come from an NVMM rescan *)
  let ps = List.init 2500 (fun _ -> alloc_exn h 64) in
  List.iter (H.free h) ps;
  ignore (List.init 2500 (fun _ -> alloc_exn h 64));
  let st = H.stats h in
  check "rebuild happened" true (st.H.rebuilds >= 1);
  check "chunks scanned" true (st.H.chunks_scanned >= 1)

(* Regression for the bitmap word-packing bug: OCaml ints are 63-bit,
   so packing 64 units per word silently lost every 64th bit and
   sustained churn eventually handed out overlapping runs.  Shadow
   every live allocation and assert pairwise disjointness through a
   long alloc/free cycle that sweeps all bit positions. *)
let test_churn_never_overlaps () =
  let rng = Prng.create 1 in
  let _, h = mkheap ~size:(1 lsl 26) () in
  let live = Hashtbl.create 1024 in
  let vals = Hashtbl.create 1024 in
  let overlap p size =
    Hashtbl.fold (fun q qs acc -> acc || (p < q + qs && q < p + size)) live false
  in
  let alloc size =
    let p = alloc_exn h size in
    if overlap p size then Alcotest.fail "overlapping allocation";
    Hashtbl.replace live p size;
    p
  in
  let free p =
    Hashtbl.remove live p;
    H.free h p
  in
  for k = 1 to 3000 do
    Hashtbl.replace vals k (alloc 100);
    if k mod 15 = 0 then ignore (alloc 512)
  done;
  for _ = 1 to 10000 do
    let k = 1 + Prng.int rng 3000 in
    if Prng.bool rng then begin
      let nv = alloc 100 in
      (match Hashtbl.find_opt vals k with Some old -> free old | None -> ());
      Hashtbl.replace vals k nv
    end
  done

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_avl_vs_model ]

let () =
  Alcotest.run "pmdk_sim"
    [ ( "avl",
        [ Alcotest.test_case "basic" `Quick test_avl_basic;
          Alcotest.test_case "best-fit order" `Quick test_avl_remove_best_fit;
          Alcotest.test_case "visit charges" `Quick test_avl_visit_charges ]
        @ qsuite );
      ("chunk_index", [ Alcotest.test_case "basic" `Quick test_chunk_index ]);
      ( "alloc",
        [ Alcotest.test_case "small roundtrip" `Quick test_small_alloc_free;
          Alcotest.test_case "small reuse" `Quick test_small_reuse_after_action_batch;
          Alcotest.test_case "large reuse" `Quick test_large_alloc_free_reuse;
          Alcotest.test_case "large split" `Quick test_large_split;
          Alcotest.test_case "oom" `Quick test_oom;
          Alcotest.test_case "fill heap" `Quick test_fill_heap_small;
          Alcotest.test_case "arena assignment" `Quick test_arena_assignment ] );
      ( "fig3",
        [ Alcotest.test_case "overflow -> overlap" `Quick
            test_fig3_overflow_overlapping;
          Alcotest.test_case "shrink -> leak" `Quick test_fig3_shrink_leak;
          Alcotest.test_case "canary mitigation" `Quick
            test_canary_blocks_corrupted_free;
          Alcotest.test_case "direct bitmap store" `Quick
            test_direct_bitmap_corruption ] );
      ( "tx",
        [ Alcotest.test_case "rollback" `Quick test_tx_rollback;
          Alcotest.test_case "commit survives" `Quick test_tx_commit_survives ] );
      ( "stats",
        [ Alcotest.test_case "rebuilds" `Quick test_rebuild_counted;
          Alcotest.test_case "churn never overlaps" `Quick
            test_churn_never_overlaps ] ) ]
