type t = {
  title : string;
  columns : string list;
  mutable rows : (string * string list) list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t label cells =
  if List.length cells > List.length t.columns - 1 then
    invalid_arg "Tablefmt.add_row: more cells than columns";
  t.rows <- (label, cells) :: t.rows

let add_float_row t label values =
  add_row t label (List.map (Printf.sprintf "%.3f") values)

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.columns in
  let cell_matrix =
    List.map
      (fun (label, cells) ->
        let padded =
          cells @ List.init (ncols - 1 - List.length cells) (fun _ -> "")
        in
        label :: padded)
      rows
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  measure t.columns;
  List.iter measure cell_matrix;
  let buf = Buffer.create 256 in
  let pad i s =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s
  in
  let emit_row row =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  emit_row t.columns;
  Buffer.add_string buf (rule ^ "\n");
  List.iter emit_row cell_matrix;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
