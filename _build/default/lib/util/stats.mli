(** Streaming summary statistics and simple histograms used by the
    benchmark harness and the simulator's instrumentation. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]. Keeps all samples; intended
    for bench-scale sample counts. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
