type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let mem t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  b land (1 lsl (i land 7)) <> 0

let set_range t pos len =
  for i = pos to pos + len - 1 do set t i done

let clear_range t pos len =
  for i = pos to pos + len - 1 do clear t i done

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 0 to 255 do
    let rec count n = if n = 0 then 0 else (n land 1) + count (n lsr 1) in
    table.(i) <- count i
  done;
  fun b -> table.(b)

let count t =
  let total = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    total := !total + popcount_byte (Char.code (Bytes.get t.bits i))
  done;
  (* Bits beyond [length] are never set, so no mask is needed. *)
  !total

let first_clear_run t len =
  if len <= 0 then invalid_arg "Bitset.first_clear_run";
  let rec scan start run i =
    if run = len then Some start
    else if i >= t.length then None
    else if mem t i then scan (i + 1) 0 (i + 1)
    else scan start (run + 1) (i + 1)
  in
  scan 0 0 0

let iter_set t f =
  for i = 0 to t.length - 1 do
    if mem t i then f i
  done

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let is_empty t =
  let rec loop i =
    i >= Bytes.length t.bits
    || (Bytes.get t.bits i = '\000' && loop (i + 1))
  in
  loop 0

let copy t = { bits = Bytes.copy t.bits; length = t.length }
