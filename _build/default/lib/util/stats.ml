type t = {
  mutable samples : float list;
  mutable sorted : float array option; (* cache, invalidated by add *)
  mutable count : int;
  mutable total : float;
  mutable sum_sq : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { samples = []; sorted = None; count = 0; total = 0.;
    sum_sq = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0. else t.total /. float_of_int t.count
let min_value t = t.min_v
let max_value t = t.max_v

let stddev t =
  if t.count < 2 then 0.
  else
    let n = float_of_int t.count in
    let m = t.total /. n in
    let var = (t.sum_sq /. n) -. (m *. m) in
    sqrt (Float.max 0. var)

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile";
  let a = sorted t in
  if Array.length a = 0 then 0.
  else
    let rank = p /. 100. *. float_of_int (Array.length a - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)

let clear t =
  t.samples <- [];
  t.sorted <- None;
  t.count <- 0;
  t.total <- 0.;
  t.sum_sq <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
    t.count (mean t)
    (if t.count = 0 then 0. else t.min_v)
    (percentile t 50.) (percentile t 99.)
    (if t.count = 0 then 0. else t.max_v)
