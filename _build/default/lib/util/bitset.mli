(** Fixed-capacity mutable bitsets.

    Used for allocation bitmaps and cache-line dirty tracking in the
    simulated memory device. *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all clear. *)

val length : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

val set_range : t -> int -> int -> unit
(** [set_range t pos len] sets bits [pos .. pos+len-1]. *)

val clear_range : t -> int -> int -> unit

val count : t -> int
(** Number of set bits. *)

val first_clear_run : t -> int -> int option
(** [first_clear_run t len] finds the lowest index starting a run of
    [len] clear bits, scanning from bit 0. *)

val iter_set : t -> (int -> unit) -> unit
(** Applies the function to each set bit in increasing order. *)

val clear_all : t -> unit
val is_empty : t -> bool
val copy : t -> t
