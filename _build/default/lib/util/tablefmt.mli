(** Fixed-width plain-text table rendering for benchmark reports.

    The bench harness prints one table per reproduced figure; this module
    keeps the rendering in one place so every figure reads the same way. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts an empty table. The first column is
    the row label; the rest are series values. *)

val add_row : t -> string -> string list -> unit
(** [add_row t label cells] appends a row. Missing cells render blank;
    extra cells are an error. *)

val add_float_row : t -> string -> float list -> unit
(** Convenience: formats each value with 3 significant decimals. *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)
