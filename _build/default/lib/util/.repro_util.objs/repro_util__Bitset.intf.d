lib/util/bitset.mli:
