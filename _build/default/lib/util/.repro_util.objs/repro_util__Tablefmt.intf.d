lib/util/tablefmt.mli:
