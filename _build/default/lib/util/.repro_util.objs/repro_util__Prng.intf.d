lib/util/prng.mli:
