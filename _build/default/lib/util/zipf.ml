type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let sum = ref 0. in
  for i = 1 to n do
    sum := !sum +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
    /. (1. -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 }

let draw t rng =
  let u = Prng.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let rank =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let r = int_of_float rank in
    if r >= t.n then t.n - 1 else if r < 0 then 0 else r

(* 64-bit FNV-1a over the 8 little-endian bytes of the rank. *)
let fnv_hash x =
  let open Int64 in
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let v = ref (of_int x) in
  for _ = 0 to 7 do
    let byte = to_int (logand !v 0xffL) in
    h := mul (logxor !h (of_int byte)) prime;
    v := shift_right_logical !v 8
  done;
  to_int (logand !h 0x3FFFFFFFFFFFFFFFL)

let scrambled t rng =
  let rank = draw t rng in
  fnv_hash rank mod t.n
