(** Zipfian key distribution as used by YCSB.

    Implements the Gray et al. rejection-free method used by the YCSB
    reference generator (ScrambledZipfian minus the scrambling; callers
    that need scattered keys apply their own hash on top). *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] prepares a generator over [\[0, n)].
    [theta] defaults to 0.99, the YCSB default. *)

val draw : t -> Prng.t -> int
(** Draws a rank; rank 0 is the most popular item. *)

val scrambled : t -> Prng.t -> int
(** Draws a rank and scatters it over [\[0, n)] with an FNV-style hash,
    mimicking YCSB's ScrambledZipfianGenerator. *)
