(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every experiment, test and demo is reproducible from a single seed.
    The generator is xoshiro256** seeded through splitmix64, following
    Blackman & Vigna.  States are cheap to create and can be split so
    that each simulated thread owns an independent stream. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val next_u64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)]. [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
