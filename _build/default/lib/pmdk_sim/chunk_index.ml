(** Volatile index of chunks by address — the DRAM-side lookup PMDK
    performs with address arithmetic on its uniformly-aligned zones;
    our chunks are variable-sized, so the index is a sorted array with
    binary search.  Rebuilt from NVMM by walking the chunk chain at
    attach time. *)

type entry = { base : int; mutable size : int }

type t = {
  mutable entries : entry array;
  mutable count : int;
  mutable memo : entry option;
}

let create () = { entries = [||]; count = 0; memo = None }

let clear t =
  t.entries <- [||];
  t.count <- 0;
  t.memo <- None

(* position of the first entry with base > a *)
let upper_bound t a =
  let lo = ref 0 and hi = ref t.count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.entries.(mid).base <= a then lo := mid + 1 else hi := mid
  done;
  !lo

let add t ~base ~size =
  if t.count = Array.length t.entries then begin
    let cap = max 16 (2 * Array.length t.entries) in
    let fresh = Array.make cap { base = 0; size = 0 } in
    Array.blit t.entries 0 fresh 0 t.count;
    t.entries <- fresh
  end;
  let pos = upper_bound t base in
  Array.blit t.entries pos t.entries (pos + 1) (t.count - pos);
  t.entries.(pos) <- { base; size };
  t.count <- t.count + 1;
  t.memo <- None

(** Entry containing address [a], if any. *)
let find t a =
  match t.memo with
  | Some e when a >= e.base && a < e.base + e.size -> Some e
  | _ ->
    let pos = upper_bound t a in
    if pos = 0 then None
    else
      let e = t.entries.(pos - 1) in
      if a >= e.base && a < e.base + e.size then begin
        t.memo <- Some e;
        Some e
      end
      else None

(** Shrinks the entry starting at [base] (chunk split). *)
let resize t ~base ~size =
  let pos = upper_bound t base in
  if pos > 0 && t.entries.(pos - 1).base = base then begin
    t.entries.(pos - 1).size <- size;
    t.memo <- None
  end

let count t = t.count
