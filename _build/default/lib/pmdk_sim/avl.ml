(** Volatile AVL tree of free chunks keyed by (size, addr) — the
    DRAM-side index the PMDK allocator uses for large free blocks
    (paper §3.1, Fig. 2).  Guarded by a single global lock in the
    allocator, which the paper identifies as a scalability bottleneck;
    [on_visit] lets the owner charge simulated DRAM latency per node
    touched so that tree depth has a cost. *)

type node = {
  key_size : int;
  key_addr : int;
  mutable left : node option;
  mutable right : node option;
  mutable height : int;
}

type t = {
  mutable root : node option;
  mutable count : int;
  on_visit : unit -> unit;
}

let create ?(on_visit = fun () -> ()) () =
  { root = None; count = 0; on_visit }

let count t = t.count

let height = function None -> 0 | Some n -> n.height

let update n = n.height <- 1 + max (height n.left) (height n.right)

let balance_factor n = height n.left - height n.right

let rotate_right n =
  match n.left with
  | None -> n
  | Some l ->
    n.left <- l.right;
    l.right <- Some n;
    update n;
    update l;
    l

let rotate_left n =
  match n.right with
  | None -> n
  | Some r ->
    n.right <- r.left;
    r.left <- Some n;
    update n;
    update r;
    r

let rebalance n =
  update n;
  let bf = balance_factor n in
  if bf > 1 then begin
    (match n.left with
     | Some l when balance_factor l < 0 -> n.left <- Some (rotate_left l)
     | _ -> ());
    rotate_right n
  end
  else if bf < -1 then begin
    (match n.right with
     | Some r when balance_factor r > 0 -> n.right <- Some (rotate_right r)
     | _ -> ());
    rotate_left n
  end
  else n

let compare_key (s1, a1) (s2, a2) =
  match compare s1 s2 with 0 -> compare a1 a2 | c -> c

let insert t ~size ~addr =
  let rec go = function
    | None ->
      t.count <- t.count + 1;
      { key_size = size; key_addr = addr; left = None; right = None; height = 1 }
    | Some n ->
      t.on_visit ();
      let c = compare_key (size, addr) (n.key_size, n.key_addr) in
      if c < 0 then n.left <- Some (go n.left)
      else if c > 0 then n.right <- Some (go n.right)
      else invalid_arg "Avl.insert: duplicate key";
      rebalance n
  in
  t.root <- Some (go t.root)

(* Removes the node with the smallest key; returns it. *)
let rec pop_min n =
  match n.left with
  | None -> ((n.key_size, n.key_addr), n.right)
  | Some l ->
    let min_kv, l' = pop_min l in
    n.left <- l';
    (min_kv, Some (rebalance n))

let remove t ~size ~addr =
  let removed = ref false in
  let rec go = function
    | None -> None
    | Some n ->
      t.on_visit ();
      let c = compare_key (size, addr) (n.key_size, n.key_addr) in
      if c < 0 then begin
        n.left <- go n.left;
        Some (rebalance n)
      end
      else if c > 0 then begin
        n.right <- go n.right;
        Some (rebalance n)
      end
      else begin
        removed := true;
        match n.left, n.right with
        | None, r -> r
        | l, None -> l
        | l, Some r ->
          let (ks, ka), r' = pop_min r in
          let n' =
            { key_size = ks; key_addr = ka; left = l; right = r'; height = 0 }
          in
          Some (rebalance n')
      end
  in
  t.root <- go t.root;
  if !removed then t.count <- t.count - 1;
  !removed

(** Smallest (size, addr) with [size >= wanted] — best fit. *)
let find_best_fit t ~size:wanted =
  let rec go best = function
    | None -> best
    | Some n ->
      t.on_visit ();
      if n.key_size >= wanted then go (Some (n.key_size, n.key_addr)) n.left
      else go best n.right
  in
  go None t.root

let remove_best_fit t ~size =
  match find_best_fit t ~size with
  | None -> None
  | Some (s, a) ->
    let ok = remove t ~size:s ~addr:a in
    assert ok;
    Some (s, a)

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
      go n.left;
      f ~size:n.key_size ~addr:n.key_addr;
      go n.right
  in
  go t.root

let clear t =
  t.root <- None;
  t.count <- 0

(* test helper: verify AVL balance and BST ordering *)
let check t =
  let rec go lo = function
    | None -> 0
    | Some n ->
      let hl = go lo n.left in
      let hr = go (Some (n.key_size, n.key_addr)) n.right in
      (match lo with
       | Some k when compare_key k (n.key_size, n.key_addr) >= 0 ->
         failwith "Avl.check: ordering violated"
       | _ -> ());
      (match n.left with
       | Some l when compare_key (l.key_size, l.key_addr) (n.key_size, n.key_addr) >= 0 ->
         failwith "Avl.check: left ordering violated"
       | _ -> ());
      if abs (hl - hr) > 1 then failwith "Avl.check: unbalanced";
      if n.height <> 1 + max hl hr then failwith "Avl.check: bad height";
      n.height
  in
  ignore (go None t.root)
