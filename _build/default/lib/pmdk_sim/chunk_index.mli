(** Volatile index of chunks by address — the DRAM-side lookup PMDK
    performs with address arithmetic on its uniformly-aligned zones;
    our chunks are variable-sized, so the index is a sorted array with
    binary search and a hot-path memo.  Rebuilt from NVMM by walking
    the chunk chain at attach time. *)

type entry = { base : int; mutable size : int }

type t

val create : unit -> t
val clear : t -> unit

val add : t -> base:int -> size:int -> unit

val find : t -> int -> entry option
(** Entry whose [base, base+size) range contains the address. *)

val resize : t -> base:int -> size:int -> unit
(** Shrinks the entry starting exactly at [base] (chunk split). *)

val count : t -> int
