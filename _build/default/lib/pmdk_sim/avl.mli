(** Volatile AVL tree of free chunks keyed by (size, addr) — the
    DRAM-side index the PMDK allocator uses for large free blocks
    (paper §3.1, Fig. 2).

    Guarded by a single global lock in the allocator, which the paper
    identifies as a scalability bottleneck; [on_visit] lets the owner
    charge simulated DRAM latency per node touched, giving tree depth
    a cost. *)

type t

val create : ?on_visit:(unit -> unit) -> unit -> t

val count : t -> int

val insert : t -> size:int -> addr:int -> unit
(** Raises [Invalid_argument] on a duplicate (size, addr) key. *)

val remove : t -> size:int -> addr:int -> bool
(** Returns whether the key was present. *)

val find_best_fit : t -> size:int -> (int * int) option
(** Smallest (size, addr) with size ≥ the request — best fit. *)

val remove_best_fit : t -> size:int -> (int * int) option
(** {!find_best_fit} + {!remove}, atomically from the caller's view. *)

val iter : t -> (size:int -> addr:int -> unit) -> unit
(** In key order. *)

val clear : t -> unit

val check : t -> unit
(** Validates AVL balance and BST ordering; raises [Failure].
    Test/diagnostic use. *)
