lib/pmdk_sim/pmdk_sim.ml: Alloc_intf Avl Chunk_index Heap Layout Option
