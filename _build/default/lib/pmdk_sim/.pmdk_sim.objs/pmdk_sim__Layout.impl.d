lib/pmdk_sim/layout.ml: Int64
