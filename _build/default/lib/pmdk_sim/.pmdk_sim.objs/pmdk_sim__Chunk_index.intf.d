lib/pmdk_sim/chunk_index.mli:
