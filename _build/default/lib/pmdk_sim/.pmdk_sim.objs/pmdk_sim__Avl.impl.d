lib/pmdk_sim/avl.ml:
