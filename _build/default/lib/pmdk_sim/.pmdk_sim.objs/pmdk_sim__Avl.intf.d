lib/pmdk_sim/avl.mli:
