lib/pmdk_sim/heap.ml: Alloc_intf Array Avl Chunk_index Layout List Machine Nvmm Persist Printf
