lib/pmdk_sim/chunk_index.ml: Array
