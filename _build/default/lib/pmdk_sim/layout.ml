(** On-NVMM layout of the PMDK-like baseline heap (paper §3, Fig. 2).

    {v
    base ........ header: magic, root, bump pointer, global action log,
                  per-lane undo and transaction logs
    chunks ...... contiguous chain of chunks, each 4 KiB header + data:
                  - small chunks: fixed 256 KiB, allocation bitmap in the
                    header, 64 B units, in-place 16 B object headers
                  - large chunks: one object, in-place header at the
                    start of the data area
                  - free chunks: kind/size only (indexed by a DRAM AVL)
    v}

    The defining property reproduced from the paper: object metadata
    (the 16-byte header holding the allocation size) lives immediately
    before the user data, in user-writable memory. *)

let word = 8
let page = 4096

let magic = 0x504D444B53494DL |> Int64.to_int (* "PMDKSIM" *)
let chunk_magic = 0x43484E4BL |> Int64.to_int (* "CHNK" *)
let obj_magic = 0x4F424A48L |> Int64.to_int (* "OBJH" *)

(* object header, in place, immediately before the user data *)
let obj_header_size = 16
let obj_off_size = -16 (* relative to the user pointer *)
let obj_off_magic = -8

(* chunk geometry *)
let chunk_header_size = page
let small_chunk_size = 256 * 1024
let unit_size = 64
let small_units = (small_chunk_size - chunk_header_size) / unit_size (* 4032 *)
let small_max_units = 32
(* largest object served by the small path (user bytes) *)
let small_max_size = (small_max_units * unit_size) - obj_header_size

let ck_off_magic = 0
let ck_off_kind = 8 (* 1 = small, 2 = large, 3 = free *)
let ck_off_size = 16 (* total chunk bytes, header included *)
let ck_off_arena = 24
let ck_off_bitmap = 32 (* small chunks: 4032 units at 32 per word = 1008 bytes *)

let kind_small = 1
let kind_large = 2
let kind_free = 3

(* heap header *)
let hd_off_magic = 0
let hd_off_heap_id = 8
let hd_off_window_size = 16
let hd_off_root = 24
let hd_off_next_va = 32

(* global action log: batched small frees (paper §3.3) *)
let action_cap = 64
let hd_off_action_count = 40
let hd_off_action_entries = 48
let hd_off_lanes = hd_off_action_entries + (action_cap * word)

(* per-lane (per-CPU) logs: undo for metadata, tx for transactional
   allocation *)
let lane_undo_cap = 256
let lane_tx_cap = 256

let lane_size = word + (lane_undo_cap * 24) + word + (lane_tx_cap * word)

let lane_off lane = hd_off_lanes + (lane * lane_size)
let lane_undo_count lane = lane_off lane
let lane_undo_entries lane = lane_off lane + word
let lane_tx_count lane = lane_undo_entries lane + (lane_undo_cap * 24)
let lane_tx_entries lane = lane_tx_count lane + word

let header_size ~lanes =
  ((lane_off lanes + page - 1) / page) * page

let num_arenas = 12
(** The paper: "a given heap contains 12 arenas". *)

let round_to n align = (n + align - 1) / align * align

(** Units needed for a small object, in-place header included. *)
let units_for size = (size + obj_header_size + unit_size - 1) / unit_size

(** Total chunk bytes for a large object. *)
let large_chunk_bytes size =
  chunk_header_size + round_to (size + obj_header_size) page
