(** Simulated Intel Memory Protection Keys (MPK).

    Implements the three properties Poseidon relies on (paper §4.3):

    - memory is tagged with one of 16 protection keys at 4 KiB page
      granularity, with no page-table changes needed to flip access
      rights;
    - access rights for a key live in a per-thread (per-core PKRU)
      register, so granting the metadata region write permission to the
      thread inside an allocator operation does not open it for any
      other thread;
    - flipping rights ([wrpkru]) costs ~23 cycles — the cost is charged
      by the [machine] layer, which also calls {!check} on every
      simulated memory access.

    Key 0 is the default key; freshly tagged memory and untagged pages
    carry it, and its default permission is read-write, matching
    hardware behaviour. *)

type t

type pkey = int
(** 0..15. *)

type perm = Read_write | Read_only | No_access

type access = Read | Write

type fault = { fault_addr : int; fault_access : access; fault_pkey : pkey }

exception Fault of fault
(** Raised by {!check} on a permission violation — the simulated
    SIGSEGV a stray user store into protected metadata produces. *)

val page_size : int
(** 4096. *)

val create : unit -> t

val alloc_key : t -> pkey
(** Allocates an unused key (1..15); raises [Failure] when exhausted. *)

val free_key : t -> pkey -> unit

val assign_range : t -> pkey -> base:int -> size:int -> unit
(** Tags the page-aligned range [base, base+size) with [pkey].
    Raises [Invalid_argument] if the range is not page-aligned or
    overlaps a differently-shaped existing range; re-assigning an
    identical range swaps its key (restart after crash). *)

val key_of_addr : t -> int -> pkey

val set_default_perm : t -> pkey -> perm -> unit
(** Permission threads hold for [pkey] unless they overrode it — the
    "metadata is read-only by default" state. *)

type capability
(** Unforgeable witness for a {!guard}ed key (see the lockdown section
    below). *)

val set_perm : ?cap:capability -> t -> thread:int -> pkey -> perm -> unit
(** The simulated [wrpkru]: sets the calling thread's rights for
    [pkey].  Once the unit is {!seal}ed, loosening the rights of a
    {!guard}ed key requires that key's capability (raises
    {!Wrpkru_denied} otherwise); tightening is always allowed. *)

(** {2 wrpkru lockdown (paper §8)}

    The paper notes that an attacker who can execute [wrpkru] defeats
    MPK protection, and points to binary inspection (Hodor, ERIM) as
    the countermeasure: only vetted call sites may loosen permissions.
    The simulation models the vetted-call-site property with an
    unforgeable capability: {!guard} returns the key's capability,
    {!seal} turns enforcement on, and thereafter only [set_perm
    ~cap] calls can grant access — a stray or attacker-issued wrpkru
    is refused. *)

exception Wrpkru_denied of pkey

val guard : t -> pkey -> capability
(** Registers [pkey] for lockdown and returns its capability (the
    "vetted call site" identity).  Idempotent per key. *)

val seal : t -> unit
(** Enables enforcement: from now on, loosening a guarded key's
    permission without its capability raises {!Wrpkru_denied}. *)

val sealed : t -> bool

val get_perm : t -> thread:int -> pkey -> perm

val reset_thread : t -> thread:int -> unit
(** Drops per-thread overrides (thread exit). *)

val check : t -> thread:int -> int -> access -> unit
(** Validates one access; raises {!Fault} on violation.  No-op when
    protection is disabled. *)

val set_enabled : t -> bool -> unit
(** Ablation switch (experiment A3): when disabled, {!check} passes
    everything. *)

val enabled : t -> bool

val faults_observed : t -> int
(** Total faults raised so far (for reporting). *)
