type pkey = int
type perm = Read_write | Read_only | No_access
type access = Read | Write
type fault = { fault_addr : int; fault_access : access; fault_pkey : pkey }

exception Fault of fault

let page_size = 4096
let num_keys = 16

type range = { rbase : int; rsize : int; mutable rkey : pkey }

type capability = { cap_key : pkey }

exception Wrpkru_denied of pkey

type t = {
  mutable ranges : range array; (* sorted by rbase; page-aligned *)
  mutable key_used : bool array;
  defaults : perm array;
  threads : (int, perm array) Hashtbl.t; (* thread id -> PKRU *)
  mutable enabled_ : bool;
  mutable faults : int;
  mutable memo : range option; (* hot-path lookup memo *)
  guarded : bool array; (* keys under wrpkru lockdown *)
  mutable sealed_ : bool;
}

let create () =
  let key_used = Array.make num_keys false in
  key_used.(0) <- true;
  { ranges = [||];
    key_used;
    defaults = Array.make num_keys Read_write;
    threads = Hashtbl.create 64;
    enabled_ = true;
    faults = 0;
    memo = None;
    guarded = Array.make num_keys false;
    sealed_ = false }

let alloc_key t =
  let rec find i =
    if i >= num_keys then failwith "Mpk.alloc_key: all 16 keys in use"
    else if not t.key_used.(i) then begin
      t.key_used.(i) <- true;
      i
    end
    else find (i + 1)
  in
  find 1

let free_key t k =
  if k <= 0 || k >= num_keys then invalid_arg "Mpk.free_key";
  t.key_used.(k) <- false;
  t.guarded.(k) <- false; (* a recycled key starts unguarded *)
  t.defaults.(k) <- Read_write;
  Hashtbl.iter (fun _ pkru -> pkru.(k) <- Read_write) t.threads;
  t.ranges <- Array.of_list
      (List.filter (fun r -> r.rkey <> k) (Array.to_list t.ranges));
  t.memo <- None

let check_key k =
  if k < 0 || k >= num_keys then invalid_arg "Mpk: key out of range"

let assign_range t k ~base ~size =
  check_key k;
  if size <= 0 then invalid_arg "Mpk.assign_range";
  if base mod page_size <> 0 || size mod page_size <> 0 then
    invalid_arg "Mpk.assign_range: must be page-aligned";
  (* Exact re-assignment of an existing range just swaps the key
     (restart after a crash re-tags the same metadata region). *)
  let existing =
    Array.to_list t.ranges
    |> List.find_opt (fun r -> r.rbase = base && r.rsize = size)
  in
  (match existing with
   | Some r -> r.rkey <- k
   | None ->
     let overlaps r = base < r.rbase + r.rsize && r.rbase < base + size in
     if Array.exists overlaps t.ranges then
       invalid_arg "Mpk.assign_range: overlapping range";
     let ranges = Array.append t.ranges [| { rbase = base; rsize = size; rkey = k } |] in
     Array.sort (fun a b -> compare a.rbase b.rbase) ranges;
     t.ranges <- ranges);
  t.memo <- None

let find_range t a =
  match t.memo with
  | Some r when a >= r.rbase && a < r.rbase + r.rsize -> Some r
  | _ ->
    let rec search lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let r = t.ranges.(mid) in
        if a < r.rbase then search lo (mid - 1)
        else if a >= r.rbase + r.rsize then search (mid + 1) hi
        else begin
          t.memo <- Some r;
          Some r
        end
    in
    search 0 (Array.length t.ranges - 1)

let key_of_addr t a =
  match find_range t a with Some r -> r.rkey | None -> 0

let set_default_perm t k p =
  check_key k;
  t.defaults.(k) <- p

let pkru_of t thread =
  match Hashtbl.find_opt t.threads thread with
  | Some pkru -> pkru
  | None ->
    let pkru = Array.copy t.defaults in
    Hashtbl.replace t.threads thread pkru;
    pkru

let get_perm_unchecked t ~thread k =
  match Hashtbl.find_opt t.threads thread with
  | Some pkru -> pkru.(k)
  | None -> t.defaults.(k)

let get_perm t ~thread k =
  check_key k;
  get_perm_unchecked t ~thread k

(* permission lattice: is [p] strictly more permissive than [q]? *)
let loosens p q =
  match p, q with
  | Read_write, (Read_only | No_access) -> true
  | Read_only, No_access -> true
  | _ -> false

let set_perm ?cap t ~thread k p =
  check_key k;
  if t.sealed_ && t.guarded.(k)
     && loosens p (get_perm_unchecked t ~thread k)
     && (match cap with Some c -> c.cap_key <> k | None -> true)
  then raise (Wrpkru_denied k);
  (pkru_of t thread).(k) <- p

let guard t k =
  check_key k;
  t.guarded.(k) <- true;
  { cap_key = k }

let seal t = t.sealed_ <- true
let sealed t = t.sealed_

let reset_thread t ~thread = Hashtbl.remove t.threads thread

let check t ~thread a access =
  if t.enabled_ then begin
    let k = key_of_addr t a in
    if k <> 0 then begin
      let p = get_perm t ~thread k in
      let ok =
        match p, access with
        | Read_write, _ -> true
        | Read_only, Read -> true
        | Read_only, Write -> false
        | No_access, _ -> false
      in
      if not ok then begin
        t.faults <- t.faults + 1;
        raise (Fault { fault_addr = a; fault_access = access; fault_pkey = k })
      end
    end
  end

let set_enabled t b = t.enabled_ <- b
let enabled t = t.enabled_
let faults_observed t = t.faults
