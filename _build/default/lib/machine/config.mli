(** Cost model of the simulated evaluation machine.

    Latencies follow the published measurements of Intel Optane DC PMM
    (Izraelevitz et al., arXiv:1903.05714) and Yang et al. (FAST '20),
    which the paper itself cites for its performance arguments; the MPK
    toggle cost is the paper's own figure (§4.3: ~23 cycles).  All
    values are nanoseconds of simulated time unless noted. *)

type t = {
  num_cpus : int;        (** simulated logical CPUs; paper machine: 112, figures sweep to 64 *)
  numa_domains : int;    (** sockets; CPUs are split in contiguous blocks *)
  cache_lines_per_cpu : int; (** per-CPU cache model capacity (direct-mapped) *)
  cache_hit_ns : int;    (** load serviced by the local cache *)
  dram_read_ns : int;    (** DRAM load miss *)
  dram_write_ns : int;   (** DRAM store (store buffer) *)
  nvmm_read_ns : int;    (** Optane load miss (~2-3x DRAM) *)
  nvmm_write_ns : int;   (** Optane store (cached; media cost charged at write-back) *)
  remote_numa_mult : float; (** multiplier for cross-socket misses *)
  clwb_ns : int;         (** per-line write-back cost *)
  sfence_ns : int;       (** fence/drain cost *)
  wrpkru_ns : int;       (** MPK permission toggle (~23 cycles) *)
  lock_acquire_ns : int; (** uncontended atomic RMW *)
  lock_transfer_ns : int;(** lock cache line bouncing from another CPU *)
  nvmm_read_service_ns : int;
  (** per-line occupancy of the NUMA node's NVMM controller on a read
      miss — models the shared-bandwidth ceiling (Yang et al.,
      FAST '20) that flattens every allocator past ~32 threads in the
      paper's Fig. 9 *)
  nvmm_write_service_ns : int;
  (** per-line controller occupancy of a write-back; higher than the
      read figure because of Optane's 256 B internal write
      amplification *)
  nvmm_dimms_per_node : int;
  (** parallel DIMM servers per node (4 KiB-interleaved); consecutive
      flushes to the same 256 B XPLine write-combine for free *)
  yield_ops : int;
  (** a simulated thread yields to the scheduler every this many
      charged memory operations, bounding how far threads drift apart
      in simulated time (keeps the bandwidth queue causally sane) *)
}

val default : t
(** 64 CPUs over 2 NUMA domains — the machine of the paper's figures. *)

val cpu_numa : t -> int -> int
(** NUMA domain of a CPU (contiguous blocks). *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical configurations. *)
