type t = {
  num_cpus : int;
  numa_domains : int;
  cache_lines_per_cpu : int;
  cache_hit_ns : int;
  dram_read_ns : int;
  dram_write_ns : int;
  nvmm_read_ns : int;
  nvmm_write_ns : int;
  remote_numa_mult : float;
  clwb_ns : int;
  sfence_ns : int;
  wrpkru_ns : int;
  lock_acquire_ns : int;
  lock_transfer_ns : int;
  nvmm_read_service_ns : int;
  nvmm_write_service_ns : int;
  nvmm_dimms_per_node : int;
  yield_ops : int;
}

let default =
  { num_cpus = 64;
    numa_domains = 2;
    cache_lines_per_cpu = 8192; (* 512 KiB of 64 B lines *)
    cache_hit_ns = 2;
    dram_read_ns = 80;
    dram_write_ns = 12;
    nvmm_read_ns = 170;
    nvmm_write_ns = 15;
    remote_numa_mult = 2.0;
    clwb_ns = 30;
    sfence_ns = 100;
    wrpkru_ns = 9; (* ~23 cycles at 2.7 GHz *)
    lock_acquire_ns = 20;
    lock_transfer_ns = 70;
    nvmm_read_service_ns = 2;
    nvmm_write_service_ns = 12;
    nvmm_dimms_per_node = 6;
    yield_ops = 64;
  }

let cpu_numa t cpu =
  if cpu < 0 || cpu >= t.num_cpus then invalid_arg "Config.cpu_numa";
  cpu * t.numa_domains / t.num_cpus

let validate t =
  if t.num_cpus <= 0 then invalid_arg "Config: num_cpus must be positive";
  if t.numa_domains <= 0 || t.numa_domains > t.num_cpus then
    invalid_arg "Config: numa_domains out of range";
  if t.cache_lines_per_cpu land (t.cache_lines_per_cpu - 1) <> 0 then
    invalid_arg "Config: cache_lines_per_cpu must be a power of two";
  if t.remote_numa_mult < 1.0 then
    invalid_arg "Config: remote_numa_mult must be >= 1"
