lib/machine/machine.mli: Bytes Config Mpk Nvmm Simcore
