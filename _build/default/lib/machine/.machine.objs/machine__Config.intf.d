lib/machine/config.mli:
