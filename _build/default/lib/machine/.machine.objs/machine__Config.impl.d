lib/machine/config.ml:
