lib/machine/machine.ml: Array Bytes Config Fun Hashtbl Mpk Nvmm Simcore
