(** Generic persistent undo log over a fixed NVMM area.

    Shared by Poseidon's per-sub-heap logs, the PMDK-like baseline's
    per-lane logs and the extendible-hash index.  The area consists of
    a count word at [count_addr] and [cap] 24-byte entries
    {addr, old value, checksum} at [entries_addr].

    Protocol per operation: the first logged write to a word appends
    {addr, old, checksum} and the bumped count, then issues {e one}
    persistent barrier for both before performing the in-place write —
    so any in-place change that can possibly reach the media has a
    persistent, valid log entry.  Because entry and count share one
    barrier, a crash can persist the count ahead of the entry; the
    checksum detects such torn entries, and skipping them is safe
    precisely because their in-place write was never issued.

    {!commit} persists every touched line and truncates the log
    (persisting the zeroed count is the commit point).  {!recover}
    replays entries in reverse and is idempotent, so a crash during
    recovery is safe. *)

type ctx
(** One in-flight operation. *)

exception Overflow
(** The operation touched more than [cap] distinct words. *)

val entry_size : int
(** 24 bytes; the log area needs [cap * entry_size] bytes at
    [entries_addr]. *)

val begin_op : Machine.t -> count_addr:int -> entries_addr:int -> cap:int -> ctx

val write : ctx -> int -> int -> unit
(** [write ctx addr value]: logs the word's old value on first touch
    (persisted before the in-place write), then writes in place
    (volatile until {!commit}). *)

val mark_dirty : ctx -> int -> unit
(** Registers a line for persistence at {!commit} without logging —
    for freshly initialised words whose old value is semantically dead
    (the caller guarantees a rollback of some *other* logged word
    kills them). *)

val machine : ctx -> Machine.t

val commit : ?before_truncate:(unit -> unit) -> ctx -> unit
(** Persists every dirty line, runs [before_truncate] (e.g. a micro-log
    append that must be durable before the undo log disappears, paper
    §5.3), then truncates. *)

val recover : Machine.t -> count_addr:int -> entries_addr:int -> bool
(** Replays a non-empty log in reverse (skipping torn entries);
    returns whether anything was replayed.  Idempotent. *)

val is_empty : Machine.t -> count_addr:int -> bool
