lib/persist/pundo.mli: Machine
