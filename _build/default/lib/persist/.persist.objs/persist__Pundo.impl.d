lib/persist/pundo.ml: Hashtbl Machine
