lib/persist/plog.mli: Machine
