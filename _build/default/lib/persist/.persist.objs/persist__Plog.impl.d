lib/persist/plog.ml: List Machine
