(** Generic persistent append-only word log with truncate-on-commit —
    the shape of Poseidon's micro log (uncommitted transactional
    allocations, paper §4.5), and of the PMDK-like baseline's
    transaction and action logs.

    Appends persist the entry before the bumped count, so entries
    below the count are always valid; {!truncate} (persisting the
    zeroed count) is the commit point. *)

type area = {
  count_addr : int;
  entries_addr : int;
  cap : int;
}

exception Overflow

val append : Machine.t -> area -> int -> unit
val truncate : Machine.t -> area -> unit
val entries : Machine.t -> area -> int list
val count : Machine.t -> area -> int
val is_empty : Machine.t -> area -> bool
val is_full : Machine.t -> area -> bool
