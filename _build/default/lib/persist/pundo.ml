(** Generic persistent undo log over a fixed NVMM area.

    Shared by Poseidon's per-sub-heap logs and the PMDK-like baseline's
    per-lane logs.  The area consists of a count word at [count_addr]
    and [cap] 24-byte entries {addr, old value, checksum} at
    [entries_addr].

    Protocol per operation: the first logged write to a word appends
    {addr, old, checksum} and the bumped count, then issues {e one}
    persistent barrier for both before performing the in-place write —
    so any in-place change that can possibly reach the media has a
    persistent, valid log entry (the paper's "updates the original
    metadata after the persistent barrier of the undo logging", §5.2).
    Because entry and count share one barrier, a crash can persist the
    count ahead of the entry; the checksum detects such torn entries,
    and skipping them is safe precisely because their in-place write
    was never issued.

    {!commit} persists every touched line and truncates the log
    (persisting the zeroed count is the commit point).  {!recover}
    replays entries in reverse; replay is idempotent. *)

let word = 8
let entry_size = 24
let cache_line = 64

let checksum_salt = 0x00C0FFEE
let checksum addr value = addr lxor value lxor checksum_salt

type ctx = {
  mach : Machine.t;
  count_addr : int;
  entries_addr : int;
  cap : int;
  logged : (int, unit) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable count : int;
}

exception Overflow

let machine ctx = ctx.mach

let begin_op mach ~count_addr ~entries_addr ~cap =
  { mach;
    count_addr;
    entries_addr;
    cap;
    logged = Hashtbl.create 32;
    dirty = Hashtbl.create 32;
    count = 0 }

let line_of a = a land lnot (cache_line - 1)

(** Marks a line dirty without logging — for freshly initialised words
    whose old value is semantically dead (the caller guarantees a
    rollback of some *other* logged word kills them). *)
let mark_dirty ctx addr = Hashtbl.replace ctx.dirty (line_of addr) ()

let write ctx addr value =
  if not (Hashtbl.mem ctx.logged addr) then begin
    if ctx.count >= ctx.cap then raise Overflow;
    let old = Machine.read_u64 ctx.mach addr in
    let e = ctx.entries_addr + (ctx.count * entry_size) in
    Machine.write_u64 ctx.mach e addr;
    Machine.write_u64 ctx.mach (e + 8) old;
    Machine.write_u64 ctx.mach (e + 16) (checksum addr old);
    ctx.count <- ctx.count + 1;
    Machine.write_u64 ctx.mach ctx.count_addr ctx.count;
    (* one barrier covers the entry and the count *)
    Machine.clwb ctx.mach e;
    if line_of (e + entry_size - 1) <> line_of e then
      Machine.clwb ctx.mach (e + entry_size - 1);
    Machine.clwb ctx.mach ctx.count_addr;
    Machine.sfence ctx.mach;
    Hashtbl.add ctx.logged addr ()
  end;
  Machine.write_u64 ctx.mach addr value;
  Hashtbl.replace ctx.dirty (line_of addr) ()

let persist_dirty ctx =
  Hashtbl.iter (fun line () -> Machine.clwb ctx.mach line) ctx.dirty;
  Machine.sfence ctx.mach;
  Hashtbl.reset ctx.dirty

let commit ?before_truncate ctx =
  persist_dirty ctx;
  (match before_truncate with Some f -> f () | None -> ());
  Machine.write_u64 ctx.mach ctx.count_addr 0;
  Machine.persist ctx.mach ctx.count_addr word;
  ctx.count <- 0;
  Hashtbl.reset ctx.logged

let recover mach ~count_addr ~entries_addr =
  let count = Machine.read_u64 mach count_addr in
  if count = 0 then false
  else begin
    for i = count - 1 downto 0 do
      let e = entries_addr + (i * entry_size) in
      let addr = Machine.read_u64 mach e in
      let old = Machine.read_u64 mach (e + 8) in
      let chk = Machine.read_u64 mach (e + 16) in
      (* a torn entry means its in-place write was never issued *)
      if chk = checksum addr old then begin
        Machine.write_u64 mach addr old;
        Machine.clwb mach addr
      end
    done;
    Machine.sfence mach;
    Machine.write_u64 mach count_addr 0;
    Machine.persist mach count_addr word;
    true
  end

let is_empty mach ~count_addr = Machine.read_u64 mach count_addr = 0
