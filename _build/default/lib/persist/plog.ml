(** Generic persistent append-only word log with truncate-on-commit —
    the shape of Poseidon's micro log (uncommitted transactional
    allocations) and of the PMDK-like baseline's transaction and
    action logs. *)

let word = 8

type area = {
  count_addr : int;
  entries_addr : int;
  cap : int;
}

exception Overflow

let count mach area = Machine.read_u64 mach area.count_addr

let append mach area v =
  let n = count mach area in
  if n >= area.cap then raise Overflow;
  let e = area.entries_addr + (n * word) in
  Machine.write_u64 mach e v;
  Machine.persist mach e word;
  Machine.write_u64 mach area.count_addr (n + 1);
  Machine.persist mach area.count_addr word

let truncate mach area =
  Machine.write_u64 mach area.count_addr 0;
  Machine.persist mach area.count_addr word

let entries mach area =
  let n = count mach area in
  List.init n (fun i -> Machine.read_u64 mach (area.entries_addr + (i * word)))

let is_empty mach area = count mach area = 0
let is_full mach area = count mach area >= area.cap
