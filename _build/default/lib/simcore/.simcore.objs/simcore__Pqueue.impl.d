lib/simcore/pqueue.ml: Array
