lib/simcore/sched.ml: Effect Fun Hashtbl List Pqueue Printf Queue
