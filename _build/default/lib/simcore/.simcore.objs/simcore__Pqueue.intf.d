lib/simcore/pqueue.mli:
