lib/simcore/sched.mli:
