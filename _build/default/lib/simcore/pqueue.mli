(** Monomorphic binary min-heap of scheduled tasks.

    Tasks are ordered by (time, sequence-number) so that equal-time tasks
    run in insertion order, which keeps the discrete-event scheduler
    deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Removes and returns the earliest task, or [None] if empty. *)

val peek_time : 'a t -> int option

val length : 'a t -> int
val is_empty : 'a t -> bool
