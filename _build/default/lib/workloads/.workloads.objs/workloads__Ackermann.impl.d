lib/workloads/ackermann.ml: Alloc_intf Factories Machine
