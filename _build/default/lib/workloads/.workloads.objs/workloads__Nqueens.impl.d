lib/workloads/nqueens.ml: Alloc_intf Factories Machine
