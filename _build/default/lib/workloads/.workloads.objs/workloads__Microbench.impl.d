lib/workloads/microbench.ml: Alloc_intf Array Factories Machine Option Printf Repro_util
