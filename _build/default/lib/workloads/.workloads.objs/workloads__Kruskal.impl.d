lib/workloads/kruskal.ml: Alloc_intf Factories Machine Repro_util
