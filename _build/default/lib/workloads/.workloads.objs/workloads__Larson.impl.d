lib/workloads/larson.ml: Alloc_intf Array Factories Machine Repro_util Simcore
