lib/workloads/trace.ml: Alloc_intf Array Buffer Hashtbl List Machine Printf Repro_util String
