lib/workloads/factories.ml: Alloc_intf Machine Makalu_sim Pmdk_sim Poseidon
