lib/workloads/safety.ml: Alloc_intf Factories List Machine Makalu_sim Mpk Nvmm Option Pmdk_sim Poseidon Printf
