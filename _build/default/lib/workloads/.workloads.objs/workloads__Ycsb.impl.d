lib/workloads/ycsb.ml: Alloc_intf Array Btree Factories Machine Printf Repro_util
