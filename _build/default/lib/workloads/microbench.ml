(** Microbenchmark of paper §7.2 (Fig. 6): each thread performs 100
    allocations and 100 frees in random order, repeating until its
    share of the total operation count is done, for a given object
    size.  No inter-thread frees ("to show the ideal maximum
    performance"). *)

module Prng = Repro_util.Prng

let batch = 100

(** Runs one configuration; returns throughput in Mops/s of simulated
    time (an operation = one allocation or one free). *)
let run ~(factory : Factories.factory) ?cfg ~size ~threads ~total_ops () =
  let mach, inst = factory.Factories.make ?cfg () in
  Factories.warmup mach inst ~threads;
  let ops_per_thread = max (2 * batch) (total_ops / threads) in
  let rounds = ops_per_thread / (2 * batch) in
  let secs =
    Machine.parallel mach ~threads (fun i ->
        let rng = Prng.create (0x5EED + i) in
        let live = Array.make batch Alloc_intf.null in
        for _round = 1 to rounds do
          (* 100 allocations and 100 frees, randomly interleaved *)
          let allocated = ref 0 and freed = ref 0 in
          while !freed < batch do
            let do_alloc =
              !allocated < batch
              && (!allocated = !freed || Prng.bool rng)
            in
            if do_alloc then begin
              match Alloc_intf.i_alloc inst size with
              | Some p ->
                live.(!allocated) <- p;
                incr allocated
              | None ->
                failwith
                  (Printf.sprintf "%s: out of memory at size %d"
                     factory.Factories.name size)
            end
            else begin
              Alloc_intf.i_free inst live.(!freed);
              incr freed
            end
          done
        done)
  in
  let total = float_of_int (threads * rounds * 2 * batch) in
  total /. secs /. 1e6

(** Producer/consumer variant: every object is freed by the *next*
    thread (mod [threads]), forcing the inter-thread free path the
    paper's microbenchmark deliberately avoids — on Poseidon this is
    the only source of sub-heap lock contention (§5.7). *)
let run_remote_free ~(factory : Factories.factory) ?cfg ~size ~threads
    ~total_ops () =
  let mach, inst = factory.Factories.make ?cfg () in
  Factories.warmup mach inst ~threads;
  let rounds = max 1 (total_ops / threads / (2 * batch)) in
  (* mailboxes.(i) = objects produced by thread i, consumed by i+1 *)
  let mailboxes = Array.make threads [||] in
  let secs_total = ref 0.0 in
  for _round = 1 to rounds do
    let s =
      Machine.parallel mach ~threads (fun i ->
          (* consume the previous round's objects of our neighbour *)
          Array.iter
            (fun p -> if not (Alloc_intf.is_null p) then Alloc_intf.i_free inst p)
            mailboxes.((i + threads - 1) mod threads);
          (* produce a fresh batch *)
          let fresh =
            Array.init batch (fun _ ->
                Option.value ~default:Alloc_intf.null
                  (Alloc_intf.i_alloc inst size))
          in
          mailboxes.(i) <- fresh)
    in
    secs_total := !secs_total +. s
  done;
  (* drain *)
  Array.iter
    (Array.iter (fun p ->
         if not (Alloc_intf.is_null p) then Alloc_intf.i_free inst p))
    mailboxes;
  float_of_int (threads * rounds * 2 * batch) /. !secs_total /. 1e6
