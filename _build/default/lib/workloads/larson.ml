(** Larson benchmark (paper §7.3, Fig. 7): simulates a server with
    multiple concurrent threads performing cross-thread allocations
    and deallocations over a shared slot array, with random object
    sizes, for a fixed simulated duration. *)

module Prng = Repro_util.Prng

let slots_per_thread = 256

(* the classic Larson size range; a good half of it is above Makalu's
   400 B small/large threshold, which is what exposes its global
   chunk list (paper 7.2) *)
let min_size = 10
let max_size = 1000

(** Returns throughput in ops/s of simulated time (an operation = one
    replace = one free + one allocation). *)
let run ~(factory : Factories.factory) ?cfg ~threads ~duration_s () =
  let mach, inst = factory.Factories.make ?cfg () in
  Factories.warmup mach inst ~threads;
  let nslots = threads * slots_per_thread in
  let slots = Array.make nslots Alloc_intf.null in
  let claimed = Array.make nslots false in
  let duration_ns = int_of_float (duration_s *. 1e9) in
  let total_ops = ref 0 in
  let secs =
    Machine.parallel mach ~threads (fun i ->
        let rng = Prng.create (0xA12 + i) in
        let start = Simcore.Sched.now () in
        let ops = ref 0 in
        while Simcore.Sched.now () - start < duration_ns do
          let s = Prng.int rng nslots in
          (* claim the slot; pure OCaml state flips are atomic at
             simulated-thread granularity *)
          if not claimed.(s) then begin
            claimed.(s) <- true;
            let old = slots.(s) in
            if not (Alloc_intf.is_null old) then Alloc_intf.i_free inst old;
            let size = Prng.int_in rng min_size max_size in
            (match Alloc_intf.i_alloc inst size with
             | Some p ->
               slots.(s) <- p;
               (* touch the object like a server filling a buffer *)
               let raw = Alloc_intf.i_get_rawptr inst p in
               Machine.write_u64 mach raw (Prng.int rng max_int);
               Machine.persist mach raw 8
             | None -> slots.(s) <- Alloc_intf.null);
            claimed.(s) <- false;
            incr ops
          end
        done;
        total_ops := !total_ops + !ops)
  in
  float_of_int !total_ops /. secs
