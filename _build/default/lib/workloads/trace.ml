(** Allocation-trace recording and replay.

    A trace is a deterministic sequence of allocator events that can
    be replayed against any {!Alloc_intf.instance}, making allocator
    behaviour directly comparable (same requests, same order, same
    thread placement) and making bug reports reproducible.  Traces
    serialize to a compact line-oriented text format:

    {v
    a <id> <size>     allocation, named <id>
    f <id>            free of the allocation named <id>
    t <id> <size> <0|1>  transactional allocation (1 = commit point)
    v}

    Replay tolerates failed allocations (ids that never materialised
    are skipped on free), so a trace captured on a large heap can be
    replayed on a small one. *)

module Prng = Repro_util.Prng

type event =
  | Alloc of int * int (* id, size *)
  | Free of int
  | Tx_alloc of int * int * bool (* id, size, is_end *)

type t = event array

(* ---------- generation ---------- *)

(** Random trace in the style of the paper's microbenchmark: mixed
    sizes, every allocation eventually freed with probability
    [free_ratio]. *)
let random ?(seed = 42) ?(min_size = 16) ?(max_size = 4096)
    ?(free_ratio = 0.8) ?(tx_ratio = 0.1) ~events () =
  let rng = Prng.create seed in
  let out = ref [] in
  let live = ref [] in
  let next_id = ref 0 in
  let n_live = ref 0 in
  for _ = 1 to events do
    let do_free =
      !n_live > 0 && Prng.float rng 1.0 < free_ratio /. (free_ratio +. 1.0)
    in
    if do_free then begin
      let idx = Prng.int rng !n_live in
      let id = List.nth !live idx in
      live := List.filteri (fun i _ -> i <> idx) !live;
      decr n_live;
      out := Free id :: !out
    end
    else begin
      let id = !next_id in
      incr next_id;
      let size = Prng.int_in rng min_size max_size in
      if Prng.float rng 1.0 < tx_ratio then
        out := Tx_alloc (id, size, Prng.bool rng) :: !out
      else out := Alloc (id, size) :: !out;
      live := id :: !live;
      incr n_live
    end
  done;
  Array.of_list (List.rev !out)

(* ---------- serialization ---------- *)

let to_string (t : t) =
  let buf = Buffer.create (Array.length t * 12) in
  Array.iter
    (fun e ->
      (match e with
       | Alloc (id, size) -> Buffer.add_string buf (Printf.sprintf "a %d %d" id size)
       | Free id -> Buffer.add_string buf (Printf.sprintf "f %d" id)
       | Tx_alloc (id, size, is_end) ->
         Buffer.add_string buf
           (Printf.sprintf "t %d %d %d" id size (if is_end then 1 else 0)));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

exception Parse_error of int * string

let of_string s =
  let events = ref [] in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "a"; id; size ] ->
          events := Alloc (int_of_string id, int_of_string size) :: !events
        | [ "f"; id ] -> events := Free (int_of_string id) :: !events
        | [ "t"; id; size; e ] ->
          events :=
            Tx_alloc (int_of_string id, int_of_string size, e = "1") :: !events
        | _ -> raise (Parse_error (lineno + 1, line)))
    lines;
  Array.of_list (List.rev !events)

(* ---------- replay ---------- *)

type replay_result = {
  allocs_ok : int;
  allocs_failed : int;
  frees : int;
  skipped_frees : int; (** frees of ids whose allocation failed *)
  simulated_seconds : float; (** 0 when replayed outside the simulation *)
}

(* replay body shared by the inline and simulated variants *)
let replay_events inst (t : t) =
  let ids = Hashtbl.create 256 in
  let ok = ref 0 and failed = ref 0 and frees = ref 0 and skipped = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Alloc (id, size) ->
        (match Alloc_intf.i_alloc inst size with
         | Some p ->
           Hashtbl.replace ids id p;
           incr ok
         | None -> incr failed)
      | Tx_alloc (id, size, is_end) ->
        (match Alloc_intf.i_tx_alloc inst size ~is_end with
         | Some p ->
           Hashtbl.replace ids id p;
           incr ok
         | None -> incr failed)
      | Free id ->
        (match Hashtbl.find_opt ids id with
         | Some p ->
           Hashtbl.remove ids id;
           Alloc_intf.i_free inst p;
           incr frees
         | None -> incr skipped))
    t;
  (!ok, !failed, !frees, !skipped)

(** Replays the trace directly (outside the simulation: no costs). *)
let replay inst t =
  let ok, failed, frees, skipped = replay_events inst t in
  { allocs_ok = ok;
    allocs_failed = failed;
    frees;
    skipped_frees = skipped;
    simulated_seconds = 0.0 }

(** Replays the trace on one simulated thread and reports the
    simulated time it took — the apples-to-apples comparison across
    allocators. *)
let replay_timed ~mach inst t =
  let result = ref (0, 0, 0, 0) in
  let secs =
    Machine.parallel mach ~threads:1 (fun _ -> result := replay_events inst t)
  in
  let ok, failed, frees, skipped = !result in
  { allocs_ok = ok;
    allocs_failed = failed;
    frees;
    skipped_frees = skipped;
    simulated_seconds = secs }

(** Splits a trace across [threads] simulated threads (round-robin by
    allocation id, frees following their allocation's thread) and
    replays concurrently. *)
let replay_parallel ~mach inst ~threads (t : t) =
  let owner id = id mod threads in
  let per_thread =
    Array.init threads (fun i ->
        Array.of_list
          (List.filter
             (fun e ->
               match e with
               | Alloc (id, _) | Free id | Tx_alloc (id, _, _) -> owner id = i)
             (Array.to_list t)))
  in
  Machine.parallel mach ~threads (fun i ->
      ignore (replay_events inst per_thread.(i)))
