(** Ackermann benchmark (paper §7.4, Fig. 8 left).

    Each iteration allocates one large buffer, uses it as the
    memoisation cache while computing Ackermann values, then frees it.
    The paper uses a 1 GiB cache for A(4,5) repeated 100k times; we
    scale the cache and the function arguments down but keep the
    pattern: one large allocation + compute + free per iteration, so
    the large-allocation path dominates exactly as in the paper. *)

(* Memo table inside the simulated buffer: entry (m, n) at
   [(m * width + n) * 8]; value 0 = unset (stored value is ack+1). *)
let rec ack mach ~buf ~width ~height m n =
  if m = 0 then n + 1
  else if m * width + n < width * height then begin
    let slot = buf + (((m * width) + n) * 8) in
    let cached = Machine.read_u64 mach slot in
    if cached <> 0 then cached - 1
    else begin
      let v =
        if n = 0 then ack mach ~buf ~width ~height (m - 1) 1
        else
          ack mach ~buf ~width ~height (m - 1)
            (ack mach ~buf ~width ~height m (n - 1))
      in
      Machine.write_u64 mach slot (v + 1);
      v
    end
  end
  else if n = 0 then ack mach ~buf ~width ~height (m - 1) 1
  else
    ack mach ~buf ~width ~height (m - 1) (ack mach ~buf ~width ~height m (n - 1))

(** Returns Mops/s where an operation is one alloc+compute+free
    iteration (the paper reports iteration throughput). *)
let run ~(factory : Factories.factory) ?cfg ~threads ~iterations
    ?(cache_size = 64 * 1024) ?(m = 2) ?(n = 3) () =
  let mach, inst = factory.Factories.make ?cfg () in
  Factories.warmup mach inst ~threads;
  let width = 64 and height = cache_size / 8 / 64 in
  let per_thread = max 1 (iterations / threads) in
  let secs =
    Machine.parallel mach ~threads (fun _i ->
        for _ = 1 to per_thread do
          match Alloc_intf.i_alloc inst cache_size with
          | None -> failwith "Ackermann: allocator out of memory"
          | Some p ->
            let buf = Alloc_intf.i_get_rawptr inst p in
            (* a fresh cache, as the application would memset it *)
            Machine.fill mach buf cache_size '\000';
            ignore (ack mach ~buf ~width ~height m n);
            Alloc_intf.i_free inst p
        done)
  in
  float_of_int (threads * per_thread) /. secs /. 1e6
