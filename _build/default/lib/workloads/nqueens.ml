(** N-Queens benchmark (paper §7.4, Fig. 8 right).

    Each iteration performs one 32-byte allocation (the board: one
    byte per queen column, stored in simulated NVMM), solves the
    8-queens puzzle by backtracking, then frees the board.  The tiny
    allocation makes this the small-object stress test of Fig. 8,
    where Makalu's thread-local free lists shine against PMDK. *)

let board_size = 8
let alloc_size = 32

(* queens columns at board[0..row-1]; returns number of solutions
   found (stops at the first, like a satisfiability check) *)
let rec place mach board row =
  if row = board_size then 1
  else begin
    let found = ref 0 in
    let col = ref 0 in
    while !found = 0 && !col < board_size do
      let ok = ref true in
      for r = 0 to row - 1 do
        let c = Machine.read_u8 mach (board + r) in
        if c = !col || abs (c - !col) = row - r then ok := false
      done;
      if !ok then begin
        Machine.write_u8 mach (board + row) !col;
        found := place mach board (row + 1)
      end;
      incr col
    done;
    !found
  end

(** Returns Mops/s where an operation is one alloc+solve+free
    iteration. *)
let run ~(factory : Factories.factory) ?cfg ~threads ~iterations () =
  let mach, inst = factory.Factories.make ?cfg () in
  Factories.warmup mach inst ~threads;
  let per_thread = max 1 (iterations / threads) in
  let secs =
    Machine.parallel mach ~threads (fun _i ->
        for _ = 1 to per_thread do
          match Alloc_intf.i_alloc inst alloc_size with
          | None -> failwith "Nqueens: allocator out of memory"
          | Some p ->
            let board = Alloc_intf.i_get_rawptr inst p in
            let solutions = place mach board 0 in
            assert (solutions = 1);
            Machine.persist mach board board_size;
            Alloc_intf.i_free inst p
        done)
  in
  float_of_int (threads * per_thread) /. secs /. 1e6
