(** Kruskal MST benchmark (paper §7.4, Fig. 8 middle).

    Each iteration performs three 512-byte allocations (edge list,
    union-find parents, MST output — all living in simulated NVMM),
    solves the minimum spanning tree of a small random complete graph
    with Kruskal's algorithm, then frees the buffers.  Matches the
    paper's "three allocations of 512 bytes before solving the MST,
    deallocating, repeating". *)

module Prng = Repro_util.Prng

let order = 5 (* vertices, as in the paper: "order 5" *)
let buf_size = 512

(* union-find over the simulated buffer: parent of v at [dsu + 8v] *)
let rec find_root mach dsu v =
  let parent = Machine.read_u64 mach (dsu + (8 * v)) in
  if parent = v then v
  else begin
    let root = find_root mach dsu parent in
    (* path compression *)
    Machine.write_u64 mach (dsu + (8 * v)) root;
    root
  end

let solve mach ~edges ~dsu ~out rng =
  let nedges = order * (order - 1) / 2 in
  (* write the random edge list: (weight lsl 16 | u lsl 8 | v) *)
  let idx = ref 0 in
  for u = 0 to order - 1 do
    for v = u + 1 to order - 1 do
      let w = Prng.int rng 1000 in
      Machine.write_u64 mach (edges + (8 * !idx))
        ((w lsl 16) lor (u lsl 8) lor v);
      incr idx
    done
  done;
  Machine.persist mach edges (8 * nedges);
  (* sort edges by weight: selection sort in place (n is tiny and the
     memory traffic is charged) *)
  for i = 0 to nedges - 2 do
    let best = ref i in
    for j = i + 1 to nedges - 1 do
      if Machine.read_u64 mach (edges + (8 * j))
         < Machine.read_u64 mach (edges + (8 * !best))
      then best := j
    done;
    if !best <> i then begin
      let a = Machine.read_u64 mach (edges + (8 * i)) in
      let b = Machine.read_u64 mach (edges + (8 * !best)) in
      Machine.write_u64 mach (edges + (8 * i)) b;
      Machine.write_u64 mach (edges + (8 * !best)) a
    end
  done;
  (* init union-find *)
  for v = 0 to order - 1 do
    Machine.write_u64 mach (dsu + (8 * v)) v
  done;
  (* Kruskal scan *)
  let taken = ref 0 in
  let i = ref 0 in
  while !taken < order - 1 && !i < nedges do
    let e = Machine.read_u64 mach (edges + (8 * !i)) in
    let u = (e lsr 8) land 0xff and v = e land 0xff in
    let ru = find_root mach dsu u and rv = find_root mach dsu v in
    if ru <> rv then begin
      Machine.write_u64 mach (dsu + (8 * ru)) rv;
      Machine.write_u64 mach (out + (8 * !taken)) e;
      incr taken
    end;
    incr i
  done;
  Machine.persist mach out (8 * (order - 1));
  !taken

(** Returns Mops/s where an operation is one full iteration. *)
let run ~(factory : Factories.factory) ?cfg ~threads ~iterations () =
  let mach, inst = factory.Factories.make ?cfg () in
  Factories.warmup mach inst ~threads;
  let per_thread = max 1 (iterations / threads) in
  let secs =
    Machine.parallel mach ~threads (fun i ->
        let rng = Prng.create (0x4B5 + i) in
        for _ = 1 to per_thread do
          let take () =
            match Alloc_intf.i_alloc inst buf_size with
            | Some p -> p
            | None -> failwith "Kruskal: allocator out of memory"
          in
          let e = take () and d = take () and o = take () in
          let taken =
            solve mach
              ~edges:(Alloc_intf.i_get_rawptr inst e)
              ~dsu:(Alloc_intf.i_get_rawptr inst d)
              ~out:(Alloc_intf.i_get_rawptr inst o)
              rng
          in
          assert (taken = order - 1);
          Alloc_intf.i_free inst e;
          Alloc_intf.i_free inst d;
          Alloc_intf.i_free inst o
        done)
  in
  float_of_int (threads * per_thread) /. secs /. 1e6
