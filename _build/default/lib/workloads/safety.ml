(** Heap-metadata safety experiments (paper §3.2 Fig. 3, §4.7, §8).

    Replays the paper's corruption attacks against each allocator and
    reports what happened.  The attacks:

    - {e overflow}: corrupt the in-place size header of an allocated
      object upward, free it, then check whether the allocator hands
      out overlapping memory (Fig. 3 left);
    - {e shrink}: corrupt size headers downward, free everything, and
      check how much of the heap is permanently lost (Fig. 3 right);
    - {e direct}: store straight into the allocator's metadata region;
    - {e double free} / {e invalid free} (§4.4);
    - {e GC pointer corruption} (Makalu-specific, §2.2/§9). *)

type outcome =
  | Vulnerable of string (** the attack corrupted the heap *)
  | Defended of string   (** the attack was stopped or had no effect *)

let outcome_to_string = function
  | Vulnerable s -> "VULNERABLE: " ^ s
  | Defended s -> "defended: " ^ s

let base = Factories.heap_base

(* ---------- attack 1: header overflow -> overlapping allocation ----------
   Fill the heap with 64 B objects, corrupt the word 16 bytes before a
   victim object (where in-place allocators keep the size), free the
   victim, allocate again and look for overlap with live objects. *)

let fill_with inst size =
  let rec go acc =
    match Alloc_intf.i_alloc inst size with
    | Some p -> go (p :: acc)
    | None -> acc
  in
  go []

let overlapping allocs victim fresh inst =
  let mach = Alloc_intf.instance_machine inst in
  ignore mach;
  List.exists
    (fun p ->
      let praw = Alloc_intf.i_get_rawptr inst p in
      List.exists
        (fun q ->
          not (Alloc_intf.equal_nvmptr q victim)
          && (let qraw = Alloc_intf.i_get_rawptr inst q in
              praw < qraw + 64 && qraw < praw + 64))
        allocs)
    fresh

let run_overflow (make : unit -> Machine.t * Alloc_intf.instance) =
  let mach, inst = make () in
  let allocs = fill_with inst 64 in
  match allocs with
  | [] -> Defended "could not fill heap"
  | _ ->
    let victim = List.nth allocs (List.length allocs / 2) in
    let vraw = Alloc_intf.i_get_rawptr inst victim in
    (* the heap-overflow bug: a contiguous overrun clobbers the 16
       bytes below the object (both header words, as a real buffer
       overflow from the previous object would) *)
    (try
       Machine.write_u64 mach (vraw - 16) 1088;
       Machine.write_u64 mach (vraw - 8) 0x4141414141414141
     with Mpk.Fault _ -> ());
    Alloc_intf.i_free inst victim;
    let fresh = fill_with inst 64 in
    if overlapping allocs victim fresh inst then
      Vulnerable
        (Printf.sprintf "%d allocations handed out, overlapping live objects"
           (List.length fresh))
    else if fresh = [] then
      Vulnerable "the freed block was lost (permanent leak)"
    else
      Defended
        (Printf.sprintf "%d allocation(s) after one free, no overlap"
           (List.length fresh))

(* ---------- attack 2: header shrink -> permanent leak ---------- *)

let run_shrink (make : unit -> Machine.t * Alloc_intf.instance) ~size =
  let mach, inst = make () in
  let allocs = fill_with inst size in
  let nalloc = List.length allocs in
  if nalloc = 0 then Defended "could not fill heap"
  else begin
    List.iter
      (fun p ->
        let raw = Alloc_intf.i_get_rawptr inst p in
        (try Machine.write_u64 mach (raw - 16) 64 with Mpk.Fault _ -> ());
        Alloc_intf.i_free inst p)
      allocs;
    let refill = List.length (fill_with inst size) in
    if refill < nalloc then
      Vulnerable
        (Printf.sprintf "filled %d, refilled only %d: %d objects leaked"
           nalloc refill (nalloc - refill))
    else Defended (Printf.sprintf "refilled all %d objects" refill)
  end

(* Makalu claims leaks are fixed by the restart GC; after the shrink
   attack, restart and see whether the collector got the space back.
   (It cannot: the corrupted headers break the object walk, §2.2.) *)
let run_shrink_makalu_gc () =
  let mach = Machine.create () in
  let heap = Makalu_sim.Heap.create mach ~base ~size:(8 * 1024 * 1024) ~heap_id:1 in
  let inst = Makalu_sim.instance heap in
  let allocs = fill_with inst 4096 in
  let nalloc = List.length allocs in
  List.iter
    (fun p ->
      let raw = Alloc_intf.i_get_rawptr inst p in
      Machine.write_u64 mach (raw - 16) 64;
      Machine.persist mach (raw - 16) 8;
      Alloc_intf.i_free inst p)
    allocs;
  Nvmm.Memdev.crash (Machine.dev mach) `Strict;
  let heap2 = Makalu_sim.Heap.attach mach ~base in
  let inst2 = Makalu_sim.instance heap2 in
  let refill = List.length (fill_with inst2 4096) in
  if refill < nalloc then
    Vulnerable
      (Printf.sprintf
         "GC restart recovered %d of %d objects: corrupted headers broke the walk"
         refill nalloc)
  else Defended (Printf.sprintf "GC recovered all %d objects" refill)

(* ---------- attack 3: direct store into the metadata region ---------- *)

let run_direct_poseidon () =
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  let inst = Poseidon.instance heap in
  ignore (Alloc_intf.i_alloc inst 64);
  (* aim straight at the first sub-heap's buddy heads *)
  let target = ref None in
  Poseidon.Heap.iter_subheaps heap (fun sh ->
      if !target = None then
        target := Some (sh.Poseidon.Subheap.meta_base + Poseidon.Layout.sh_off_buddy_heads));
  match !target with
  | None -> Defended "no sub-heap"
  | Some addr ->
    (try
       Machine.write_u64 mach addr 0xDEAD;
       Vulnerable "metadata store went through"
     with Mpk.Fault _ ->
       Poseidon.Heap.check_invariants heap;
       Defended "MPK fault; metadata intact")

let run_direct_pmdk () =
  let mach = Machine.create () in
  let heap = Pmdk_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 () in
  let inst = Pmdk_sim.instance heap in
  let p =
    match Alloc_intf.i_alloc inst 64 with
    | Some p -> p
    | None -> failwith "alloc"
  in
  (* the chunk bitmap sits at a deterministic offset from the object *)
  let raw = Alloc_intf.i_get_rawptr inst p in
  let chunk = (raw - base) / Pmdk_sim.Layout.small_chunk_size * Pmdk_sim.Layout.small_chunk_size + base in
  (try
     Machine.write_u64 mach (chunk + Pmdk_sim.Layout.ck_off_bitmap) 0;
     (* with its bitmap zeroed, the allocator will re-hand-out the
        same memory after a rebuild *)
     Alloc_intf.i_free inst p;
     Vulnerable "allocation bitmap overwritten silently"
   with Mpk.Fault _ -> Defended "fault")

let run_direct_makalu () =
  let mach = Machine.create () in
  let heap = Makalu_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 in
  let inst = Makalu_sim.instance heap in
  ignore (Alloc_intf.i_alloc inst 64);
  (try
     Machine.write_u64 mach (base + Makalu_sim.Layout.hd_off_dir_count) 0;
     Vulnerable "chunk directory truncated silently (GC loses all objects)"
   with Mpk.Fault _ -> Defended "fault")

(* ---------- attack 4/5: double and invalid free ---------- *)

let run_double_free (make : unit -> Machine.t * Alloc_intf.instance) =
  let _mach, inst = make () in
  let a = Option.get (Alloc_intf.i_alloc inst 64) in
  let b = Option.get (Alloc_intf.i_alloc inst 64) in
  ignore b;
  Alloc_intf.i_free inst a;
  Alloc_intf.i_free inst a;
  (* after the double free, two fresh allocations must not overlap *)
  let c = Option.get (Alloc_intf.i_alloc inst 64) in
  let d = Option.get (Alloc_intf.i_alloc inst 64) in
  let craw = Alloc_intf.i_get_rawptr inst c in
  let draw = Alloc_intf.i_get_rawptr inst d in
  if abs (craw - draw) < 64 then
    Vulnerable "double free made the allocator hand out one block twice"
  else Defended "second free ignored"

let run_invalid_free (make : unit -> Machine.t * Alloc_intf.instance) =
  let _mach, inst = make () in
  let a = Option.get (Alloc_intf.i_alloc inst 256) in
  (* fill the heap so a reclaimed interior range would be handed out *)
  ignore (fill_with inst 64);
  (* free a pointer into the middle of the live object *)
  let bogus = { a with Alloc_intf.off = a.Alloc_intf.off + 64 } in
  (try Alloc_intf.i_free inst bogus with _ -> ());
  let live_raw = Alloc_intf.i_get_rawptr inst a in
  (* if the invalid free was accepted, a fresh allocation may overlap *)
  let fresh = fill_with inst 64 in
  let overlap =
    List.exists
      (fun p ->
        let raw = Alloc_intf.i_get_rawptr inst p in
        raw >= live_raw && raw < live_raw + 256)
      fresh
  in
  if overlap then Vulnerable "invalid free released live memory"
  else Defended "invalid free had no effect"

(* ---------- attack 6: GC pointer corruption (Makalu) ---------- *)

let run_gc_corruption () =
  let mach = Machine.create () in
  let heap = Makalu_sim.Heap.create mach ~base ~size:(1 lsl 24) ~heap_id:1 in
  let inst = Makalu_sim.instance heap in
  let a = Option.get (Alloc_intf.i_alloc inst 64) in
  let b = Option.get (Alloc_intf.i_alloc inst 64) in
  let araw = Alloc_intf.i_get_rawptr inst a in
  (* root -> a -> b *)
  Machine.write_u64 mach araw (Alloc_intf.i_get_rawptr inst b);
  Machine.persist mach araw 8;
  Alloc_intf.i_set_root inst a;
  (* program bug: a's pointer to b is clobbered *)
  Machine.write_u64 mach araw 0xBAD;
  Machine.persist mach araw 8;
  Nvmm.Memdev.crash (Machine.dev mach) `Strict;
  let heap2 = Makalu_sim.Heap.attach mach ~base in
  let st = Makalu_sim.Heap.stats heap2 in
  if st.Makalu_sim.Heap.gc_live < 2 then
    Vulnerable
      (Printf.sprintf
         "GC swept the still-referenced object (live=%d after restart)"
         st.Makalu_sim.Heap.gc_live)
  else Defended "object survived"

(* ---------- attack 7: hijacked wrpkru (8) ---------- *)

(* The paper's own limitation: an attacker executing wrpkru defeats
   MPK.  With the Hodor/ERIM-style lockdown enabled (Heap.lockdown),
   only the heap's vetted call sites can loosen the key. *)
let run_wrpkru_hijack ~lockdown () =
  let mach = Machine.create () in
  let heap =
    Poseidon.Heap.create mach ~base ~size:(1 lsl 30) ~heap_id:1
      ~sub_data_size:(1 lsl 20) ()
  in
  ignore (Alloc_intf.i_alloc (Poseidon.instance heap) 64);
  if lockdown then Poseidon.Heap.lockdown heap;
  let key = Poseidon.Heap.pkey heap in
  let target = ref 0 in
  Poseidon.Heap.iter_subheaps heap (fun sh ->
      target := sh.Poseidon.Subheap.meta_base + Poseidon.Layout.sh_off_buddy_heads);
  (* the attacker's gadget: wrpkru to RW, then scribble *)
  match
    Machine.wrpkru mach key Mpk.Read_write;
    Machine.write_u64 mach !target 0xDEAD
  with
  | () -> Vulnerable "attacker flipped the PKRU and overwrote metadata"
  | exception Mpk.Wrpkru_denied _ ->
    (* the heap itself must still work *)
    (match Alloc_intf.i_alloc (Poseidon.instance heap) 64 with
     | Some _ ->
       Poseidon.Heap.check_invariants heap;
       Defended "wrpkru refused (sealed); allocator still operational"
     | None -> Vulnerable "lockdown broke the allocator")
  | exception Mpk.Fault _ -> Defended "fault"

(* ---------- the matrix ---------- *)

type row = { attack : string; results : (string * outcome) list }

let matrix () =
  let mk_poseidon () =
    let f = Factories.poseidon ~sub_data_size:(1 lsl 20) ~window:(1 lsl 30) () in
    f.Factories.make ()
  in
  let mk_pmdk ?canary () =
    let f = Factories.pmdk ~window:(8 * 1024 * 1024) ?canary () in
    f.Factories.make ()
  in
  let mk_makalu () =
    let f = Factories.makalu ~window:(8 * 1024 * 1024) () in
    f.Factories.make ()
  in
  [ { attack = "overflowed header, then free";
      results =
        [ ("Poseidon", run_overflow mk_poseidon);
          ("PMDK", run_overflow (mk_pmdk ?canary:None));
          ("PMDK+canary", run_overflow (mk_pmdk ~canary:true));
          ("Makalu", run_overflow mk_makalu) ] };
    { attack = "shrunk header, free all (leak)";
      results =
        [ ("Poseidon", run_shrink mk_poseidon ~size:4096);
          ("PMDK", run_shrink (mk_pmdk ?canary:None) ~size:(2 * 1024 * 1024));
          ("PMDK+canary",
           run_shrink (mk_pmdk ~canary:true) ~size:(2 * 1024 * 1024));
          ("Makalu", run_shrink mk_makalu ~size:4096) ] };
    { attack = "shrunk headers, then restart GC";
      results = [ ("Makalu", run_shrink_makalu_gc ()) ] };
    { attack = "direct store into metadata";
      results =
        [ ("Poseidon", run_direct_poseidon ());
          ("PMDK", run_direct_pmdk ());
          ("Makalu", run_direct_makalu ()) ] };
    { attack = "double free";
      results =
        [ ("Poseidon", run_double_free mk_poseidon);
          ("PMDK", run_double_free (mk_pmdk ?canary:None));
          ("Makalu", run_double_free mk_makalu) ] };
    { attack = "invalid free (interior pointer)";
      results =
        [ ("Poseidon", run_invalid_free mk_poseidon);
          ("PMDK", run_invalid_free (mk_pmdk ?canary:None));
          ("Makalu", run_invalid_free mk_makalu) ] };
    { attack = "pointer corruption vs GC recovery";
      results = [ ("Makalu", run_gc_corruption ()) ] };
    { attack = "hijacked wrpkru (8 lockdown extension)";
      results =
        [ ("Poseidon", run_wrpkru_hijack ~lockdown:false ());
          ("Poseidon+lockdown", run_wrpkru_hijack ~lockdown:true ()) ] } ]
