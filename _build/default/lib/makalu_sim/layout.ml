(** On-NVMM layout of the Makalu-like baseline (paper §7.2, §9).

    Makalu does not log: crash consistency comes from a conservative
    mark-and-sweep garbage collection over the persistent heap at
    restart.  The only persistent structures are the heap header, an
    append-only directory of carved chunks (so the collector can find
    every object), and the in-place 16-byte object headers. *)

let word = 8
let page = 4096

let magic = 0x4D414B414C55L |> Int64.to_int (* "MAKALU" *)
let obj_magic = 0x4D4B4F424AL |> Int64.to_int (* "MKOBJ" *)

let obj_header_size = 16
(* [size][magic] immediately before the user data — in place, and as
   corruptible as PMDK's *)

let small_threshold = 400
(** Allocations at or below this size go through thread-local free
    lists; larger ones take the global chunk list and its lock — the
    paper's explanation for Makalu's collapse on > 400 B sizes. *)

let granule = 16
let round16 n = (n + granule - 1) / granule * granule
let bucket_of size = round16 size / granule (* 1 .. 25 for small sizes *)
let num_buckets = (small_threshold / granule) + 1

let carve_chunk_size = 64 * 1024
(** Per-CPU bump-allocation chunks for small objects. *)

(* header *)
let hd_off_magic = 0
let hd_off_heap_id = 8
let hd_off_window_size = 16
let hd_off_root = 24
let hd_off_next_va = 32
let hd_off_dir_count = 40
let hd_off_dir = 48

let dir_cap = 32768
let dir_entry_size = 16 (* {addr, size} *)

(* Persistent free-list heads: Makalu's thread-local and reclaim free
   lists are intrusive persistent lists (link word inside each free
   object); their head pointers live in the heap header.  The restart
   GC rebuilds them anyway, but the runtime pays the NVMM stores. *)
let max_cpus = 256
let hd_off_local_heads = hd_off_dir + (dir_cap * dir_entry_size)
let local_head_off cpu bucket =
  hd_off_local_heads + (((cpu * num_buckets) + bucket) * word)
let hd_off_reclaim_heads = hd_off_local_heads + (max_cpus * num_buckets * word)

let header_size =
  ((hd_off_reclaim_heads + (num_buckets * word) + page - 1) / page) * page

let chunk_bytes_for size =
  let need = obj_header_size + round16 size in
  (need + carve_chunk_size - 1) / carve_chunk_size * carve_chunk_size
