lib/makalu_sim/heap.ml: Alloc_intf Array Hashtbl Layout List Machine Nvmm
