lib/makalu_sim/layout.ml: Int64
