lib/makalu_sim/makalu_sim.ml: Alloc_intf Heap Layout Option
