(** Per-sub-heap undo logging (paper §4.5, §5.2, §5.8): Poseidon's
    instantiation of the generic {!Persist.Pundo} log over the log
    area in the sub-heap header. *)

type ctx = Persist.Pundo.ctx

exception Overflow = Persist.Pundo.Overflow

let count_addr meta_base = meta_base + Layout.sh_off_undo_count
let entries_addr meta_base = meta_base + Layout.sh_off_undo_entries

let begin_op mach ~meta_base =
  Persist.Pundo.begin_op mach ~count_addr:(count_addr meta_base)
    ~entries_addr:(entries_addr meta_base) ~cap:Layout.undo_cap

let write = Persist.Pundo.write
let mark_dirty = Persist.Pundo.mark_dirty
let machine = Persist.Pundo.machine
let commit = Persist.Pundo.commit

let recover mach ~meta_base =
  Persist.Pundo.recover mach ~count_addr:(count_addr meta_base)
    ~entries_addr:(entries_addr meta_base)

let is_empty mach ~meta_base =
  Persist.Pundo.is_empty mach ~count_addr:(count_addr meta_base)
