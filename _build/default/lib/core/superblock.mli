(** Heap superblock: magic, root pointer and the sub-heap directory
    (paper §4.1, §4.6).

    Superblock updates are individually crash-atomic without logging:
    the root pointer is a single aligned word, and sub-heap creation
    persists the directory entry's fields before flipping (and
    persisting) its "active" state word last.  A crash between the two
    leaks a carved virtual range at worst, never consistency. *)

val format :
  Machine.t -> base:int -> window_size:int -> heap_id:int -> num_slots:int -> unit
(** Writes a fresh superblock; persisting the magic last is the
    creation commit point. *)

val is_formatted : Machine.t -> base:int -> bool

val check : Machine.t -> base:int -> unit
(** Raises [Failure] on bad magic or unsupported version. *)

val heap_id : Machine.t -> base:int -> int
val window_size : Machine.t -> base:int -> int
val num_slots : Machine.t -> base:int -> int

val root : Machine.t -> base:int -> int
(** Packed nvmptr ({!Alloc_intf.pack}). *)

val set_root : Machine.t -> base:int -> int -> unit
(** Atomic persisted single-word store. *)

val next_va : Machine.t -> base:int -> int
(** Bump pointer for carving sub-heap regions from the window. *)

val set_next_va : Machine.t -> base:int -> int -> unit

val last_pkey : Machine.t -> base:int -> int
(** Hint: the MPK key of the previous process incarnation, freed and
    re-allocated by {!Heap.attach} (keys are runtime, not persistent,
    state). *)

val set_last_pkey : Machine.t -> base:int -> int -> unit

(** {2 Sub-heap directory} *)

val slot_active : Machine.t -> base:int -> int -> bool
val slot_meta_base : Machine.t -> base:int -> int -> int
val slot_data_base : Machine.t -> base:int -> int -> int
val slot_data_size : Machine.t -> base:int -> int -> int

val publish_slot :
  Machine.t ->
  base:int ->
  int ->
  meta_base:int ->
  data_base:int ->
  data_size:int ->
  unit
(** Publishes a formatted sub-heap: fields first (persisted), state
    last (persisted) — the activation commit point (§5.1). *)
