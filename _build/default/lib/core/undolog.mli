(** Per-sub-heap undo logging (paper §4.5, §5.2, §5.8): Poseidon's
    instantiation of the generic {!Persist.Pundo} log over the log
    area in the sub-heap header.  See {!Persist.Pundo} for the
    protocol (eager checksummed entries, one barrier per first-touched
    word, commit-by-truncation, idempotent reverse replay). *)

type ctx = Persist.Pundo.ctx

exception Overflow

val begin_op : Machine.t -> meta_base:int -> ctx

val write : ctx -> int -> int -> unit
val mark_dirty : ctx -> int -> unit
val machine : ctx -> Machine.t

val commit : ?before_truncate:(unit -> unit) -> ctx -> unit

val recover : Machine.t -> meta_base:int -> bool
val is_empty : Machine.t -> meta_base:int -> bool
