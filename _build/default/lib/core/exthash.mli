(** Extendible hashing — the "more advanced index scheme" the paper's
    §8 suggests for huge NVMM capacities, implemented as an
    alternative to the multi-level table for comparison (experiment
    X6).

    A directory of 2^depth bucket pointers indexes fixed-size buckets
    of key/value words; an overfull bucket splits, doubling the
    directory when its local depth reaches the global depth.  Lookups
    are O(1) — one directory load plus one bucket scan — regardless of
    population; the price is unbounded directory-doubling work on the
    insert path, which is why the production allocator keeps the
    multi-level table (bounded per-operation log footprint).

    The structure lives in simulated NVMM, is self-contained (it
    embeds a private undo log) and is crash-consistent: {!with_op}
    wraps mutations, {!recover} replays after a crash.  Keys must be
    non-zero. *)

type t

val create : Machine.t -> base:int -> size:int -> t
(** Formats a fresh structure in [base, base+size) (which must be a
    mapped region). *)

val with_op : t -> (Persist.Pundo.ctx -> 'a) -> 'a
(** Runs one crash-consistent operation against the private log. *)

val recover : t -> unit
(** Replays the private undo log after a crash (idempotent). *)

val insert : Persist.Pundo.ctx -> t -> int -> int -> unit
(** [insert ctx t key value]; updates in place if the key exists.
    Call inside {!with_op}. *)

val lookup : t -> int -> int option

val delete : Persist.Pundo.ctx -> t -> int -> bool

val depth : t -> int
(** Global directory depth. *)

val count : t -> int

val check : t -> unit
(** Structural validation; raises [Failure]. *)
