(** Heap superblock: magic, root pointer and the sub-heap directory
    (paper §4.1, §4.6).

    Superblock updates are individually crash-atomic without logging:
    the root pointer is a single aligned word, and sub-heap creation
    persists the directory entry's fields before flipping (and
    persisting) its "active" state word last.  A crash between the two
    leaks a carved virtual range at worst, never consistency. *)

let magic = Layout.sb_magic
let version = 1

let read mach base off = Machine.read_u64 mach (base + off)

let write_persist mach base off v =
  Machine.write_u64 mach (base + off) v;
  Machine.persist mach (base + off) Layout.word

let format mach ~base ~window_size ~heap_id ~num_slots =
  Machine.write_u64 mach (base + Layout.sb_off_version) version;
  Machine.write_u64 mach (base + Layout.sb_off_heap_id) heap_id;
  Machine.write_u64 mach (base + Layout.sb_off_window_size) window_size;
  Machine.write_u64 mach (base + Layout.sb_off_num_slots) num_slots;
  Machine.write_u64 mach (base + Layout.sb_off_root) Alloc_intf.packed_null;
  Machine.write_u64 mach (base + Layout.sb_off_next_va)
    (base + Layout.sb_size num_slots);
  Machine.write_u64 mach (base + Layout.sb_off_last_pkey) 0;
  (* directory entries are virgin zeroes = absent *)
  Machine.persist mach base (Layout.sb_size num_slots);
  (* magic last: its persist is the creation commit point *)
  write_persist mach base Layout.sb_off_magic magic

let is_formatted mach ~base = read mach base Layout.sb_off_magic = magic

let check mach ~base =
  if not (is_formatted mach ~base) then failwith "Superblock: bad magic";
  let v = read mach base Layout.sb_off_version in
  if v <> version then
    failwith (Printf.sprintf "Superblock: unsupported version %d" v)

let heap_id mach ~base = read mach base Layout.sb_off_heap_id
let window_size mach ~base = read mach base Layout.sb_off_window_size
let num_slots mach ~base = read mach base Layout.sb_off_num_slots

let root mach ~base = read mach base Layout.sb_off_root
let set_root mach ~base packed = write_persist mach base Layout.sb_off_root packed

let next_va mach ~base = read mach base Layout.sb_off_next_va
let set_next_va mach ~base v = write_persist mach base Layout.sb_off_next_va v

let last_pkey mach ~base = read mach base Layout.sb_off_last_pkey
let set_last_pkey mach ~base v =
  write_persist mach base Layout.sb_off_last_pkey v

(* ---------- directory ---------- *)

let dir_entry base slot =
  base + Layout.sb_off_dir + (slot * Layout.dir_entry_size)

let slot_active mach ~base slot =
  read mach (dir_entry base slot) Layout.dir_off_state = 1

let slot_meta_base mach ~base slot =
  read mach (dir_entry base slot) Layout.dir_off_meta_base

let slot_data_base mach ~base slot =
  read mach (dir_entry base slot) Layout.dir_off_data_base

let slot_data_size mach ~base slot =
  read mach (dir_entry base slot) Layout.dir_off_data_size

(** Publishes a sub-heap: fields first (persisted), state last
    (persisted) — the activation commit point. *)
let publish_slot mach ~base slot ~meta_base ~data_base ~data_size =
  let e = dir_entry base slot in
  Machine.write_u64 mach (e + Layout.dir_off_meta_base) meta_base;
  Machine.write_u64 mach (e + Layout.dir_off_data_base) data_base;
  Machine.write_u64 mach (e + Layout.dir_off_data_size) data_size;
  Machine.persist mach e Layout.dir_entry_size;
  Machine.write_u64 mach (e + Layout.dir_off_state) 1;
  Machine.persist mach (e + Layout.dir_off_state) Layout.word
