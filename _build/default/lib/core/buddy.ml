(** Per-size-class free lists ("buddy list" of paper §4.1, §5.2).

    Each sub-heap keeps [Layout.num_classes] doubly-linked lists of
    free blocks, linked through the [next_free]/[prev_free] fields of
    the blocks' hash-table records.  Heads and tails are stored in the
    sub-heap header; value [0] is the list-end sentinel (no record ever
    lives at address 0).  Frees push at the tail to delay reuse of
    just-freed memory (paper §5.5); allocations pop at the head. *)

let head_addr meta_base cls = meta_base + Layout.sh_off_buddy_heads + (cls * Layout.word)
let tail_addr meta_base cls = meta_base + Layout.sh_off_buddy_tails + (cls * Layout.word)

let head mach meta_base cls = Machine.read_u64 mach (head_addr meta_base cls)
let tail mach meta_base cls = Machine.read_u64 mach (tail_addr meta_base cls)

let push_head ctx meta_base cls rec_addr =
  let mach = Undolog.machine ctx in
  let old = head mach meta_base cls in
  Record.set_next_free ctx rec_addr old;
  Record.set_prev_free ctx rec_addr 0;
  if old <> 0 then Record.set_prev_free ctx old rec_addr
  else Undolog.write ctx (tail_addr meta_base cls) rec_addr;
  Undolog.write ctx (head_addr meta_base cls) rec_addr

let push_tail ctx meta_base cls rec_addr =
  let mach = Undolog.machine ctx in
  let old = tail mach meta_base cls in
  Record.set_prev_free ctx rec_addr old;
  Record.set_next_free ctx rec_addr 0;
  if old <> 0 then Record.set_next_free ctx old rec_addr
  else Undolog.write ctx (head_addr meta_base cls) rec_addr;
  Undolog.write ctx (tail_addr meta_base cls) rec_addr

let unlink ctx meta_base cls rec_addr =
  let mach = Undolog.machine ctx in
  let nf = Record.get_next_free mach rec_addr in
  let pf = Record.get_prev_free mach rec_addr in
  if pf = 0 then Undolog.write ctx (head_addr meta_base cls) nf
  else Record.set_next_free ctx pf nf;
  if nf = 0 then Undolog.write ctx (tail_addr meta_base cls) pf
  else Record.set_prev_free ctx nf pf;
  Record.set_next_free ctx rec_addr 0;
  Record.set_prev_free ctx rec_addr 0

(** Walks the class list from the head looking for a block of at least
    [min_size] bytes, visiting at most [max_steps] nodes. *)
let first_fit mach meta_base cls ~min_size ~max_steps =
  let rec go rec_addr steps =
    if rec_addr = 0 || steps >= max_steps then None
    else if Record.get_size mach rec_addr >= min_size then Some rec_addr
    else go (Record.get_next_free mach rec_addr) (steps + 1)
  in
  go (head mach meta_base cls) 0

(** Folds over a class list (bounded); for diagnostics and tests. *)
let fold mach meta_base cls f acc =
  let rec go rec_addr acc guard =
    if rec_addr = 0 || guard > 10_000_000 then acc
    else go (Record.get_next_free mach rec_addr) (f acc rec_addr) (guard + 1)
  in
  go (head mach meta_base cls) acc 0
