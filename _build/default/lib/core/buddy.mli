(** Per-size-class free lists ("buddy list" of paper §4.1, §5.2).

    Each sub-heap keeps [Layout.num_classes] doubly-linked lists of
    free blocks, linked through the [next_free]/[prev_free] fields of
    the blocks' hash-table records.  Heads and tails live in the
    sub-heap header; 0 is the list-end sentinel.  Frees push at the
    tail to delay reuse of just-freed memory (§5.5); allocations pop
    at the head.  All arguments named [rec_addr] are record
    addresses. *)

val head : Machine.t -> int -> int -> int
(** [head mach meta_base cls]. *)

val tail : Machine.t -> int -> int -> int

val push_head : Undolog.ctx -> int -> int -> int -> unit
(** [push_head ctx meta_base cls rec_addr]. *)

val push_tail : Undolog.ctx -> int -> int -> int -> unit

val unlink : Undolog.ctx -> int -> int -> int -> unit
(** Removes the record from its class list (any position). *)

val first_fit : Machine.t -> int -> int -> min_size:int -> max_steps:int -> int option
(** Walks the class list from the head for a block of at least
    [min_size] bytes, visiting at most [max_steps] nodes. *)

val fold : Machine.t -> int -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Bounded fold over a class list (diagnostics and tests). *)
