(** Memblock-information records (paper Fig. 4).

    One 64-byte record per memory block, stored inline in the hash
    table buckets of the sub-heap metadata region: offset, size,
    status, address-adjacency links (for merging) and class-list links
    (for the buddy lists).  Reads go straight to the machine; writes
    go through the undo-logging context. *)

val get_offset : Machine.t -> int -> int
val get_size : Machine.t -> int -> int
val get_status : Machine.t -> int -> int
val get_prev : Machine.t -> int -> int
(** Offset of the address-adjacent left block ([Layout.nil_off] at the
    start of the data region). *)

val get_next : Machine.t -> int -> int
val get_next_free : Machine.t -> int -> int
(** Record address of the next block in the class list (0 = end). *)

val get_prev_free : Machine.t -> int -> int

val set_offset : Undolog.ctx -> int -> int -> unit
val set_size : Undolog.ctx -> int -> int -> unit
val set_status : Undolog.ctx -> int -> int -> unit
val set_prev : Undolog.ctx -> int -> int -> unit
val set_next : Undolog.ctx -> int -> int -> unit
val set_next_free : Undolog.ctx -> int -> int -> unit
val set_prev_free : Undolog.ctx -> int -> int -> unit

val is_live : Machine.t -> int -> bool
(** Status is free or allocated (not empty/tombstone). *)

val init :
  Undolog.ctx ->
  int ->
  off:int ->
  size:int ->
  status:int ->
  prev:int ->
  next:int ->
  unit
(** Initialises a fresh record in an empty or tombstone slot.  For a
    previously-empty slot only the status word is undo-logged (rolling
    it back kills the record); a tombstone slot — possibly tombstoned
    earlier in the same operation — gets every field logged so a
    rollback cannot resurrect a hybrid. *)
