(** Multi-level hash table of memblock records (paper §4.4, §5.2).

    Buckets store 64-byte records inline; the key is the block's
    offset in the sub-heap data region.  Lookup and insertion probe a
    fixed window of [Layout.probe_window] slots per level, so both are
    constant-time in heap size and occupancy.  When every window is
    full the caller first defragments within the windows (merging a
    free block into its left neighbour releases the block's slot,
    §5.4 case 2) and finally the table grows a new level twice the
    size of the previous one (dynamic re-sizing, F2FS-style).  Empty
    top levels are released by hole punching (§5.6).

    All mutation goes through the caller's undo-logging context. *)

type t

val make : Machine.t -> meta_base:int -> base_buckets:int -> t
(** Volatile handle over a formatted sub-heap's metadata region. *)

(** {2 Geometry} *)

val levels : t -> int
val level_buckets : t -> int -> int
val level_live : t -> int -> int
val bucket_addr : t -> level:int -> idx:int -> int

val level_of_rec : t -> int -> int
(** Level containing the record at this address. *)

(** {2 Lookup and insertion} *)

val lookup : t -> int -> int option
(** Record address of the live (free or allocated) block with exactly
    this offset. *)

val find_insert_slot : t -> int -> (int * int) option
(** First reusable slot (empty or tombstone) in any level's probe
    window for this offset, as [(level, record address)]. *)

val iter_windows : t -> int -> (int -> unit) -> unit
(** Applies the function to every live record in the offset's probe
    windows across all levels (window defragmentation). *)

val live_incr : Undolog.ctx -> t -> int -> unit
val live_decr : Undolog.ctx -> t -> int -> unit

(** {2 Growth and release} *)

val extend : Undolog.ctx -> t -> bool
(** Adds one level; [false] at [Layout.max_levels]. *)

val shrink : Undolog.ctx -> t -> (int * int) option
(** Drops empty top levels; returns [(new_levels, old_levels)] so the
    caller can {!punch_levels} after committing. *)

val punch_levels : t -> from_level:int -> to_level:int -> unit
(** Hole-punches the bucket areas of levels
    [from_level .. to_level-1] (§5.6). *)
