(** Offline heap checker ("fsck" for Poseidon heaps).

    Walks a heap read-only and produces a structured report: per
    sub-heap block populations, fragmentation, size-class histograms,
    hash-table occupancy, log states — plus every invariant violation
    {!Subheap.check_invariants} would raise, collected instead of
    thrown.  Intended for post-mortem inspection and for the
    `poseidon-repro fsck`-style tooling; the test suite uses it to
    assert statistics match ground truth. *)

type subheap_report = {
  index : int;
  cpu : int;
  data_size : int;
  live_blocks : int;
  live_bytes : int;
  free_blocks : int;
  free_bytes : int;
  largest_free : int;
  class_histogram : (int * int) array; (** (class, free blocks) for non-empty classes *)
  hash_levels : int;
  hash_live : int;
  hash_capacity : int;
  undo_log_empty : bool;
  micro_log_entries : int;
  violations : string list;
}

type report = {
  heap_id : int;
  subheaps : subheap_report list;
  root_set : bool;
  total_live_bytes : int;
  total_free_bytes : int;
  total_violations : int;
}

let check_subheap (sh : Subheap.t) =
  let mach = sh.Subheap.mach in
  let live_blocks = ref 0 and live_bytes = ref 0 in
  let free_blocks = ref 0 and free_bytes = ref 0 in
  let largest_free = ref 0 in
  let per_class = Array.make Layout.num_classes 0 in
  let violations = ref [] in
  (* a corrupted heap can take the walkers anywhere: treat any escape
     (invalid address, bounds failure) as a reported violation *)
  let guarded f =
    try f () with
    | Subheap.Invariant_violation msg | Failure msg ->
      violations := msg :: !violations
    | exn -> violations := Printexc.to_string exn :: !violations
  in
  guarded (fun () ->
      Subheap.iter_blocks sh (fun ~off:_ ~size ~rec_addr:_ ~status ->
          if status = Layout.st_alloc then begin
            incr live_blocks;
            live_bytes := !live_bytes + size
          end
          else begin
            incr free_blocks;
            free_bytes := !free_bytes + size;
            if size > !largest_free then largest_free := size;
            let cls = Layout.class_of_size size in
            per_class.(cls) <- per_class.(cls) + 1
          end));
  guarded (fun () -> Subheap.check_invariants sh);
  let levels = Hashtable.levels sh.Subheap.ht in
  let hash_live = ref 0 in
  for level = 0 to levels - 1 do
    hash_live := !hash_live + Hashtable.level_live sh.Subheap.ht level
  done;
  let capacity = ref 0 in
  for level = 0 to levels - 1 do
    capacity := !capacity + Hashtable.level_buckets sh.Subheap.ht level
  done;
  { index = sh.Subheap.index;
    cpu = sh.Subheap.cpu;
    data_size = sh.Subheap.data_size;
    live_blocks = !live_blocks;
    live_bytes = !live_bytes;
    free_blocks = !free_blocks;
    free_bytes = !free_bytes;
    largest_free = !largest_free;
    class_histogram =
      Array.of_list
        (List.filter_map
           (fun cls ->
             if per_class.(cls) > 0 then Some (cls, per_class.(cls)) else None)
           (List.init Layout.num_classes Fun.id));
    hash_levels = levels;
    hash_live = !hash_live;
    hash_capacity = !capacity;
    undo_log_empty = Undolog.is_empty mach ~meta_base:sh.Subheap.meta_base;
    micro_log_entries =
      List.length (Microlog.entries mach ~meta_base:sh.Subheap.meta_base);
    violations = List.rev !violations }

let run heap =
  let subheaps = ref [] in
  Heap.iter_subheaps heap (fun sh -> subheaps := check_subheap sh :: !subheaps);
  let subheaps = List.rev !subheaps in
  { heap_id = Heap.heap_id heap;
    subheaps;
    root_set = not (Alloc_intf.is_null (Heap.get_root heap));
    total_live_bytes = List.fold_left (fun a r -> a + r.live_bytes) 0 subheaps;
    total_free_bytes = List.fold_left (fun a r -> a + r.free_bytes) 0 subheaps;
    total_violations =
      List.fold_left (fun a r -> a + List.length r.violations) 0 subheaps }

let is_clean report = report.total_violations = 0

let pp ppf report =
  Format.fprintf ppf "heap %d: %d sub-heap(s), root %s@\n" report.heap_id
    (List.length report.subheaps)
    (if report.root_set then "set" else "null");
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  sub-heap %d (cpu %d): %d live blocks / %d B, %d free blocks / %d \
         B (largest %d B)@\n"
        r.index r.cpu r.live_blocks r.live_bytes r.free_blocks r.free_bytes
        r.largest_free;
      Format.fprintf ppf
        "    hash: %d level(s), %d live records / %d buckets (%.1f%%)@\n"
        r.hash_levels r.hash_live r.hash_capacity
        (100.0 *. float_of_int r.hash_live
         /. float_of_int (max 1 r.hash_capacity));
      if r.class_histogram <> [||] then begin
        Format.fprintf ppf "    free classes:";
        Array.iter
          (fun (cls, n) ->
            Format.fprintf ppf " %d B x%d" (Layout.min_block lsl cls) n)
          r.class_histogram;
        Format.fprintf ppf "@\n"
      end;
      if not r.undo_log_empty then
        Format.fprintf ppf "    WARNING: undo log not empty@\n";
      if r.micro_log_entries > 0 then
        Format.fprintf ppf "    WARNING: %d uncommitted tx allocation(s)@\n"
          r.micro_log_entries;
      List.iter (Format.fprintf ppf "    VIOLATION: %s@\n") r.violations)
    report.subheaps;
  Format.fprintf ppf "totals: %d live B, %d free B, %d violation(s)@\n"
    report.total_live_bytes report.total_free_bytes report.total_violations
