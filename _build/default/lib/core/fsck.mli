(** Offline heap checker ("fsck" for Poseidon heaps).

    Walks a heap read-only and produces a structured report: per
    sub-heap block populations, fragmentation, size-class histograms,
    hash-table occupancy, log states — plus every invariant violation
    collected instead of thrown.  A corrupted heap never makes the
    checker escape: walker failures (including invalid addresses)
    surface as violations in the report. *)

type subheap_report = {
  index : int;
  cpu : int;
  data_size : int;
  live_blocks : int;
  live_bytes : int;
  free_blocks : int;
  free_bytes : int;
  largest_free : int;
  class_histogram : (int * int) array;
      (** (class, free blocks) for non-empty classes *)
  hash_levels : int;
  hash_live : int;
  hash_capacity : int;
  undo_log_empty : bool;
  micro_log_entries : int;
  violations : string list;
}

type report = {
  heap_id : int;
  subheaps : subheap_report list;
  root_set : bool;
  total_live_bytes : int;
  total_free_bytes : int;
  total_violations : int;
}

val run : Heap.t -> report

val is_clean : report -> bool
(** No violations anywhere. *)

val pp : Format.formatter -> report -> unit
