(** Extendible hashing — the "more advanced index scheme" the paper's
    §8 suggests for huge NVMM capacities, implemented as an
    alternative to the multi-level table for comparison.

    A directory of 2^depth bucket pointers indexes fixed-size buckets
    of records; an overfull bucket splits (doubling the directory when
    its local depth reaches the global depth), so lookups stay O(1)
    with exactly one directory load and one bucket scan regardless of
    population — where the multi-level table's worst case grows with
    the number of levels.

    The structure lives in simulated NVMM and is mutated through the
    caller's undo-logging context, matching the mutation discipline of
    the production index.  Layout, from [base]:

    {v
    0    global depth
    8    bump pointer for bucket allocation (absolute address)
    16   directory: dir_cap pointers (bucket addresses)
    ...  bucket area: buckets of [header | slots]
           bucket header: [local depth][count]
           slot: [key][value] (key 0 = empty; keys must be non-zero)
    v} *)

let word = 8
let slots_per_bucket = 14
let bucket_size = 16 + (slots_per_bucket * 16)

let max_depth = 20

type t = {
  mach : Machine.t;
  base : int;
  size : int; (* total region size *)
  log_base : int; (* private undo-log area *)
}

let off_depth = 0
let off_bump = 8
let off_dir = 16
let dir_cap = 1 lsl max_depth

let bucket_area_off = off_dir + (dir_cap * word)

let depth t = Machine.read_u64 t.mach (t.base + off_depth)
let dir_slot t i = t.base + off_dir + (i * word)

let b_depth mach b = Machine.read_u64 mach b
let b_count mach b = Machine.read_u64 mach (b + 8)
let slot_addr b i = b + 16 + (i * 16)

let mix key =
  let x = key * 0x9E3779B97F4A7C1 in
  let x = x lxor (x lsr 31) in
  (x * 0xBF58476D1CE4E5) lxor (x lsr 29) land max_int

let hash_bits t key = mix key land ((1 lsl depth t) - 1)

(* allocate a virgin bucket from the bump area *)
let alloc_bucket ctx t ~local_depth =
  let bump = Machine.read_u64 t.mach (t.base + off_bump) in
  if bump + bucket_size > t.base + t.size then failwith "Exthash: region full";
  Undolog.write ctx (t.base + off_bump) (bump + bucket_size);
  Undolog.write ctx bump local_depth;
  Undolog.write ctx (bump + 8) 0;
  (* slots are virgin zeroes (key 0 = empty) or punched *)
  bump

(** Runs [f] as one crash-consistent operation against the
    structure's private undo log. *)
let log_cap = 2048

let with_op t f =
  let ctx =
    Persist.Pundo.begin_op t.mach ~count_addr:t.log_base
      ~entries_addr:(t.log_base + 8) ~cap:log_cap
  in
  let r = f ctx in
  Persist.Pundo.commit ctx;
  r

(** Replays the private undo log after a crash (idempotent). *)
let recover t =
  ignore
    (Persist.Pundo.recover t.mach ~count_addr:t.log_base
       ~entries_addr:(t.log_base + 8))

(* Regions embed a private undo log right after the header so the
   structure is self-contained and crash-consistent on its own. *)
let create mach ~base ~size =
  if size < 65536 + bucket_area_off + (4 * bucket_size) then
    invalid_arg "Exthash.create: region too small";
  (* region layout: [64 KiB private log][exthash] *)
  let hash_base = base + 65536 in
  let t = { mach; base = hash_base; size = size - 65536; log_base = base } in
  Machine.write_u64 mach (hash_base + off_depth) 1;
  Machine.write_u64 mach (hash_base + off_bump) (hash_base + bucket_area_off);
  Machine.persist mach hash_base 16;
  with_op t (fun ctx ->
      let b0 = alloc_bucket ctx t ~local_depth:1 in
      let b1 = alloc_bucket ctx t ~local_depth:1 in
      Undolog.write ctx (dir_slot t 0) b0;
      Undolog.write ctx (dir_slot t 1) b1);
  t

let bucket_of t key =
  Machine.read_u64 t.mach (dir_slot t (hash_bits t key))

let lookup t key =
  if key = 0 then invalid_arg "Exthash: key must be non-zero";
  let b = bucket_of t key in
  let n = b_count t.mach b in
  let rec scan i =
    if i >= n then None
    else if Machine.read_u64 t.mach (slot_addr b i) = key then
      Some (Machine.read_u64 t.mach (slot_addr b i + 8))
    else scan (i + 1)
  in
  scan 0

let rec insert ctx t key value =
  if key = 0 then invalid_arg "Exthash: key must be non-zero";
  let b = bucket_of t key in
  let n = b_count t.mach b in
  (* update in place if present *)
  let rec find i =
    if i >= n then None
    else if Machine.read_u64 t.mach (slot_addr b i) = key then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> Undolog.write ctx (slot_addr b i + 8) value
  | None ->
    if n < slots_per_bucket then begin
      Undolog.write ctx (slot_addr b n) key;
      Undolog.write ctx (slot_addr b n + 8) value;
      Undolog.write ctx (b + 8) (n + 1)
    end
    else begin
      split ctx t b;
      insert ctx t key value
    end

(* split bucket [b]: allocate a sibling one local-depth deeper,
   redistribute, fix the directory (doubling it if needed) *)
and split ctx t b =
  let mach = t.mach in
  let ld = b_depth mach b in
  let gd = depth t in
  if ld = gd then begin
    (* double the directory: the upper half mirrors the lower.  The
       mirror itself needs no undo entries — it is dead until the
       (logged) depth word flips, and a rollback of the depth kills
       it — so doubling costs O(1) log entries. *)
    if gd + 1 > max_depth then failwith "Exthash: max depth reached";
    let half = 1 lsl gd in
    for i = 0 to half - 1 do
      Machine.write_u64 mach (dir_slot t (half + i))
        (Machine.read_u64 mach (dir_slot t i));
      Undolog.mark_dirty ctx (dir_slot t (half + i))
    done;
    Undolog.write ctx (t.base + off_depth) (gd + 1)
  end;
  let gd = depth t in
  let new_ld = ld + 1 in
  let sibling = alloc_bucket ctx t ~local_depth:new_ld in
  Undolog.write ctx b new_ld;
  (* redistribute: entries whose (ld)'th hash bit is 1 move *)
  let bit = 1 lsl ld in
  let keep = ref 0 and moved = ref 0 in
  let n = b_count mach b in
  for i = 0 to n - 1 do
    let k = Machine.read_u64 mach (slot_addr b i) in
    let v = Machine.read_u64 mach (slot_addr b i + 8) in
    if mix k land bit <> 0 then begin
      Undolog.write ctx (slot_addr sibling !moved) k;
      Undolog.write ctx (slot_addr sibling !moved + 8) v;
      incr moved
    end
    else begin
      if !keep <> i then begin
        Undolog.write ctx (slot_addr b !keep) k;
        Undolog.write ctx (slot_addr b !keep + 8) v
      end;
      incr keep
    end
  done;
  Undolog.write ctx (b + 8) !keep;
  Undolog.write ctx (sibling + 8) !moved;
  (* re-point the directory entries of the sibling's pattern *)
  for i = 0 to (1 lsl gd) - 1 do
    if Machine.read_u64 mach (dir_slot t i) = b && i land bit <> 0 then
      Undolog.write ctx (dir_slot t i) sibling
  done

let delete ctx t key =
  let b = bucket_of t key in
  let n = b_count t.mach b in
  let rec find i =
    if i >= n then false
    else if Machine.read_u64 t.mach (slot_addr b i) = key then begin
      (* swap in the last entry *)
      if i <> n - 1 then begin
        Undolog.write ctx (slot_addr b i)
          (Machine.read_u64 t.mach (slot_addr b (n - 1)));
        Undolog.write ctx (slot_addr b i + 8)
          (Machine.read_u64 t.mach (slot_addr b (n - 1) + 8))
      end;
      Undolog.write ctx (b + 8) (n - 1);
      true
    end
    else find (i + 1)
  in
  find 0

let count t =
  let seen = Hashtbl.create 64 in
  let total = ref 0 in
  for i = 0 to (1 lsl depth t) - 1 do
    let b = Machine.read_u64 t.mach (dir_slot t i) in
    if not (Hashtbl.mem seen b) then begin
      Hashtbl.replace seen b ();
      total := !total + b_count t.mach b
    end
  done;
  !total

(** Structural check: every key in a bucket hashes to that bucket's
    directory pattern; directory entries respect local depths. *)
let check t =
  let mach = t.mach in
  let gd = depth t in
  for i = 0 to (1 lsl gd) - 1 do
    let b = Machine.read_u64 mach (dir_slot t i) in
    let ld = b_depth mach b in
    if ld > gd then failwith "Exthash.check: local depth exceeds global";
    let n = b_count mach b in
    if n > slots_per_bucket then failwith "Exthash.check: overfull bucket";
    for s = 0 to n - 1 do
      let k = Machine.read_u64 mach (slot_addr b s) in
      if mix k land ((1 lsl ld) - 1) <> i land ((1 lsl ld) - 1) then
        failwith "Exthash.check: key in wrong bucket"
    done
  done
