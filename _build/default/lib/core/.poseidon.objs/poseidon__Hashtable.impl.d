lib/core/hashtable.ml: Layout Machine Record Undolog
