lib/core/subheap.ml: Alloc_intf Array Buddy Hashtable Hashtbl Layout List Machine Microlog Printf Record Undolog
