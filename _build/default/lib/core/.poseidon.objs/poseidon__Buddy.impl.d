lib/core/buddy.ml: Layout Machine Record Undolog
