lib/core/record.mli: Machine Undolog
