lib/core/poseidon.ml: Alloc_intf Buddy Exthash Fsck Hashtable Heap Layout Microlog Record Subheap Superblock Undolog
