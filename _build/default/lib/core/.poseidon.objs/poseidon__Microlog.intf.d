lib/core/microlog.mli: Machine
