lib/core/subheap.mli: Hashtable Machine
