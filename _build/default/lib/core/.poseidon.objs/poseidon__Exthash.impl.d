lib/core/exthash.ml: Hashtbl Machine Persist Undolog
