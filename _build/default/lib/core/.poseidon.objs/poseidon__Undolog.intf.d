lib/core/undolog.mli: Machine Persist
