lib/core/undolog.ml: Layout Persist
