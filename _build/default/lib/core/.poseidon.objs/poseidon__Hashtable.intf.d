lib/core/hashtable.mli: Machine Undolog
