lib/core/superblock.mli: Machine
