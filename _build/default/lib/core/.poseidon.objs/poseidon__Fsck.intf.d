lib/core/fsck.mli: Format Heap
