lib/core/fsck.ml: Alloc_intf Array Format Fun Hashtable Heap Layout List Microlog Printexc Subheap Undolog
