lib/core/superblock.ml: Alloc_intf Layout Machine Printf
