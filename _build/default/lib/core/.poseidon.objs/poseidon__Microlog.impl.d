lib/core/microlog.ml: Layout Persist
