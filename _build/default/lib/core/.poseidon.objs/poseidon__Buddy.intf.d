lib/core/buddy.mli: Machine Undolog
