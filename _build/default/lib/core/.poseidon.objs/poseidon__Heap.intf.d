lib/core/heap.mli: Alloc_intf Machine Subheap
