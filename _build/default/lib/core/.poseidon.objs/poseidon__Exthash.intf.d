lib/core/exthash.mli: Machine Persist
