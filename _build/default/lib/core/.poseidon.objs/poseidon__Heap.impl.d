lib/core/heap.ml: Alloc_intf Array Fun Layout List Machine Microlog Mpk Nvmm Option Subheap Superblock
