lib/core/record.ml: Layout Machine Undolog
