(** Memblock-information records (paper Fig. 4).

    One 64-byte record per memory block, stored inline in the hash
    table buckets of the sub-heap metadata region.  Reads go straight
    to the machine; writes go through the undo-logging context. *)

type field = {
  get : Machine.t -> int -> int;
  set : Undolog.ctx -> int -> int -> unit;
}

let field byte_off =
  { get = (fun mach rec_addr -> Machine.read_u64 mach (rec_addr + byte_off));
    set = (fun ctx rec_addr v -> Undolog.write ctx (rec_addr + byte_off) v) }

let offset = field Layout.rec_off_offset
let size = field Layout.rec_off_size
let status = field Layout.rec_off_status
let prev = field Layout.rec_off_prev
let next = field Layout.rec_off_next
let next_free = field Layout.rec_off_next_free
let prev_free = field Layout.rec_off_prev_free

let get_offset mach a = offset.get mach a
let get_size mach a = size.get mach a
let get_status mach a = status.get mach a
let get_prev mach a = prev.get mach a
let get_next mach a = next.get mach a
let get_next_free mach a = next_free.get mach a
let get_prev_free mach a = prev_free.get mach a

let set_offset ctx a v = offset.set ctx a v
let set_size ctx a v = size.set ctx a v
let set_status ctx a v = status.set ctx a v
let set_prev ctx a v = prev.set ctx a v
let set_next ctx a v = next.set ctx a v
let set_next_free ctx a v = next_free.set ctx a v
let set_prev_free ctx a v = prev_free.set ctx a v

let is_live mach a =
  let s = get_status mach a in
  s = Layout.st_free || s = Layout.st_alloc

(** Initialises a fresh record in a previously empty/tombstone slot.

    For a slot that was empty since the last commit, only the status
    word needs undo protection: rolling status back to "empty" makes
    the other fields irrelevant.  For a tombstone slot — which may have
    been tombstoned earlier in this very operation, in which case a
    rollback would resurrect the old record — every field is logged. *)
let init ctx rec_addr ~off ~size:sz ~status:st ~prev:p ~next:n =
  let mach = Undolog.machine ctx in
  let old_status = get_status mach rec_addr in
  if old_status = Layout.st_empty then begin
    let unlogged byte_off v =
      Machine.write_u64 mach (rec_addr + byte_off) v;
      Undolog.mark_dirty ctx (rec_addr + byte_off)
    in
    unlogged Layout.rec_off_offset off;
    unlogged Layout.rec_off_size sz;
    unlogged Layout.rec_off_prev p;
    unlogged Layout.rec_off_next n;
    unlogged Layout.rec_off_next_free 0;
    unlogged Layout.rec_off_prev_free 0;
    (* status last, and logged: reverting it kills the record *)
    set_status ctx rec_addr st
  end
  else begin
    set_offset ctx rec_addr off;
    set_size ctx rec_addr sz;
    set_prev ctx rec_addr p;
    set_next ctx rec_addr n;
    set_next_free ctx rec_addr 0;
    set_prev_free ctx rec_addr 0;
    set_status ctx rec_addr st
  end
