(** Multi-level hash table of memblock records (paper §4.4, §5.2).

    Buckets store the 64-byte records inline; the key is the block's
    offset in the sub-heap data region.  Lookup and insertion probe a
    fixed window of [Layout.probe_window] slots per level, so both are
    constant-time in the heap size.  When every window is full the
    caller first defragments within the windows (merging a free block
    into its left neighbour releases the block's slot) and finally the
    table grows a new level twice the size of the previous one
    (dynamic re-sizing, F2FS-style).  Empty top levels are released
    back to the filesystem by hole punching (§5.6). *)

type t = {
  mach : Machine.t;
  meta_base : int;
  base_buckets : int;
}

let make mach ~meta_base ~base_buckets =
  if base_buckets <= 0 then invalid_arg "Hashtable.make";
  { mach; meta_base; base_buckets }

let levels_addr t = t.meta_base + Layout.sh_off_hash_levels
let live_addr t level = t.meta_base + Layout.sh_off_level_live + (level * Layout.word)

let levels t = Machine.read_u64 t.mach (levels_addr t)

let level_live t level = Machine.read_u64 t.mach (live_addr t level)

let live_incr ctx t level =
  Undolog.write ctx (live_addr t level) (level_live t level + 1)

let live_decr ctx t level =
  let v = level_live t level in
  assert (v > 0);
  Undolog.write ctx (live_addr t level) (v - 1)

let level_base t level =
  t.meta_base + Layout.level_area_off ~base_buckets:t.base_buckets level

let level_buckets t level = Layout.level_buckets ~base_buckets:t.base_buckets level

let bucket_addr t ~level ~idx = level_base t level + (idx * Layout.record_size)

(** Level of the record stored at [rec_addr]. *)
let level_of_rec t rec_addr =
  let rel = rec_addr - (t.meta_base + Layout.sh_header_size) in
  assert (rel >= 0);
  let rec go level =
    if rel < Layout.record_size * t.base_buckets * ((1 lsl (level + 1)) - 1) then level
    else go (level + 1)
  in
  go 0

let mix x =
  let x = x * 0x9E3779B97F4A7C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xBF58476D1CE4E5 in
  (x lxor (x lsr 32)) land max_int

let hash t ~level ~off =
  mix ((off / Layout.min_block) + (level * 0x5DEECE66D)) mod level_buckets t level

(** Applies [f] to each bucket address of the probe window for [off]
    at [level]; stops early if [f] returns [Some]. *)
let find_in_window t ~level ~off f =
  let buckets = level_buckets t level in
  let h = hash t ~level ~off in
  let rec go i =
    if i >= Layout.probe_window then None
    else
      let idx = (h + i) mod buckets in
      match f (bucket_addr t ~level ~idx) with
      | Some _ as r -> r
      | None -> go (i + 1)
  in
  go 0

(** Record address of the live block with this exact offset. *)
let lookup t off =
  let nlevels = levels t in
  let rec per_level level =
    if level >= nlevels then None
    else
      match
        find_in_window t ~level ~off (fun rec_addr ->
            if Record.is_live t.mach rec_addr
               && Record.get_offset t.mach rec_addr = off
            then Some rec_addr
            else None)
      with
      | Some _ as r -> r
      | None -> per_level (level + 1)
  in
  per_level 0

(** First reusable slot (empty or tombstone) in any level's window;
    returns [(level, record address)]. *)
let find_insert_slot t off =
  let nlevels = levels t in
  let rec per_level level =
    if level >= nlevels then None
    else
      match
        find_in_window t ~level ~off (fun rec_addr ->
            let st = Record.get_status t.mach rec_addr in
            if st = Layout.st_empty || st = Layout.st_tombstone then Some rec_addr
            else None)
      with
      | Some rec_addr -> Some (level, rec_addr)
      | None -> per_level (level + 1)
  in
  per_level 0

(** Applies [f] to every live record in the probe windows for [off]
    across all levels (used by window defragmentation). *)
let iter_windows t off f =
  let nlevels = levels t in
  for level = 0 to nlevels - 1 do
    let buckets = level_buckets t level in
    let h = hash t ~level ~off in
    for i = 0 to Layout.probe_window - 1 do
      let rec_addr = bucket_addr t ~level ~idx:((h + i) mod buckets) in
      if Record.is_live t.mach rec_addr then f rec_addr
    done
  done

(** Grows the table by one level; false when [Layout.max_levels] is
    reached.  New levels need no initialisation: slots are either
    virgin zeroes or tombstones from a previously shrunk level, and
    both are valid insertion targets. *)
let extend ctx t =
  let n = levels t in
  if n >= Layout.max_levels then false
  else begin
    Undolog.write ctx (levels_addr t) (n + 1);
    true
  end

(** Releases empty top levels (hole punching, §5.6).  Runs inside an
    operation of its own; the caller punches the areas after commit. *)
let shrink ctx t =
  let rec top n =
    if n > 1 && level_live t (n - 1) = 0 then top (n - 1) else n
  in
  let n = levels t in
  let n' = top n in
  if n' < n then begin
    Undolog.write ctx (levels_addr t) n';
    Some (n', n) (* caller punches level areas n'..n-1 after commit *)
  end
  else None

let punch_levels t ~from_level ~to_level =
  for level = from_level to to_level - 1 do
    Machine.punch t.mach (level_base t level)
      (Layout.record_size * level_buckets t level)
  done
