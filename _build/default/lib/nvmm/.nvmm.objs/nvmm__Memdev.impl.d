lib/nvmm/memdev.ml: Array Bytes Hashtbl Int64 List Repro_util
