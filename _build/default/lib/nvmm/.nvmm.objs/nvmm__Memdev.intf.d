lib/nvmm/memdev.mli: Bytes Repro_util
